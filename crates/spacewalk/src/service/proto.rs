//! The daemon wire protocol: length-prefixed binary frames.
//!
//! One request or response per frame. A frame is a little-endian `u32`
//! payload length followed by that many payload bytes; payloads are
//! hand-rolled tagged binary (varint-free: fixed-width little-endian
//! integers, `f64`s as raw bits so every float round-trips bit-exactly —
//! the same discipline as the cache database format). On connect the
//! server sends a 12-byte handshake (magic `MHES` + version + feature
//! bits) before any frame, and the client answers with its own 12 bytes,
//! so a client talking to the wrong port fails immediately and loudly
//! instead of hanging on a length prefix that never comes, and a version
//! skew is a *structured* rejection on both sides rather than a frame
//! error (see [`Handshake`]).
//!
//! The protocol is deliberately local: it carries the *spec text* of a
//! walk, not paths, so the daemon never touches the client's filesystem,
//! and frontier rows carry full design identities plus `f64` bit
//! patterns, so a client can render output byte-identical to a batch run.
//!
//! Version 2 added the handshake feature word and the fleet frames
//! ([`WorkerFrame`]/[`CoordFrame`]) that carry sharded work assignments
//! and streamed `(MetricKey, f64)` evaluation points between a
//! distributed-walk coordinator and its workers.
//!
//! Version 3 added cooperative cancellation ([`Request::Cancel`]), the
//! shared-token authentication exchange ([`Response::AuthChallenge`] /
//! [`Request::Auth`] on the daemon port, [`CoordFrame::AuthChallenge`] /
//! [`WorkerFrame::Auth`] / [`CoordFrame::Denied`] on the fleet port,
//! gated by [`FEATURE_AUTH`]), and a wider [`StatsReport`] carrying
//! session-eviction counters plus the server's protocol version,
//! negotiated feature bits, and build identifier. Frame writes also
//! consult [`mhe_core::fault::next_frame_fate`], so a deterministic
//! chaos plan can drop, duplicate, truncate, or delay exact frames.

use crate::cache_db::{self, MetricKey};
use crate::cost::CacheDesign;
use mhe_cache::{CacheConfig, Policy};
use mhe_core::metrics::SamplingMetrics;
use mhe_core::SamplingConfig;
use std::io::{self, Read, Write};
use std::time::Duration;

/// Handshake magic both sides emit on every fresh connection.
pub const MAGIC: [u8; 4] = *b"MHES";
/// Protocol version, bumped on any incompatible frame-layout change.
/// Version 2: 12-byte handshake with a feature word, fleet frames.
/// Version 3: cancellation, token auth, widened [`StatsReport`].
pub const VERSION: u32 = 3;
/// Feature bit: the peer answers [`Request`] frames (frontier RPC).
pub const FEATURE_FRONTIER: u32 = 1 << 0;
/// Feature bit: the peer coordinates fleet workers ([`WorkerFrame`]s).
pub const FEATURE_FLEET: u32 = 1 << 1;
/// Feature bit: the peer requires the shared-token challenge/response
/// exchange before serving any request (see [`mhe_core::auth`]).
pub const FEATURE_AUTH: u32 = 1 << 2;
/// Upper bound on a single frame's payload; anything larger is treated as
/// stream corruption rather than an allocation request.
pub const MAX_FRAME: usize = 16 << 20;

/// A design-point query: one full spacewalk over a spec.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierRequest {
    /// The design-space specification, verbatim spec-file text (parsed
    /// server-side by [`crate::spec::Spec::parse`]).
    pub spec_text: String,
    /// Run the heuristic per-cache prewarm before the full walk
    /// (`spacewalker --heuristic`).
    pub heuristic: bool,
    /// Route the reference evaluation through interval sampling
    /// (`spacewalker --sample`).
    pub sampling: Option<SamplingConfig>,
    /// Override every cache space's replacement-policy dimension
    /// (`spacewalker --policy`).
    pub policies: Option<Vec<Policy>>,
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Evaluate a full Pareto frontier.
    Frontier(FrontierRequest),
    /// Service counters (sessions, cache traffic).
    Stats,
    /// Cancel the in-flight [`Request::Frontier`] on this connection.
    /// The server answers the *frontier* with a code-7 error once the
    /// sweep reaches a task boundary; `Cancel` itself gets no reply.
    Cancel,
    /// Answer to [`Response::AuthChallenge`]: the HMAC-SHA-256 proof of
    /// the shared token over the server's nonce.
    Auth {
        /// `HMAC-SHA256(token, nonce)` (see [`mhe_core::auth::proof`]).
        proof: [u8; 32],
    },
}

/// One frontier design, with cost/time carried as exact `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierRow {
    /// Processor (machine description) name.
    pub processor: String,
    /// Instruction-cache design.
    pub icache: CacheDesign,
    /// Data-cache design.
    pub dcache: CacheDesign,
    /// Unified-cache design.
    pub ucache: CacheDesign,
    /// System cost (area units).
    pub cost: f64,
    /// Execution time (cycles).
    pub time: f64,
}

/// A served frontier: everything a client needs to render output
/// byte-identical to an in-process batch run.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierReport {
    /// Sampling provenance when the evaluation was interval-sampled.
    pub sampling: Option<SamplingMetrics>,
    /// Frontier designs in increasing-cost order.
    pub rows: Vec<FrontierRow>,
    /// Evaluation-cache hits accumulated by the serving session's cache.
    pub hits: u64,
    /// Evaluation-cache computes accumulated by the serving session's
    /// cache.
    pub computes: u64,
}

/// Service counters and server identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsReport {
    /// Warm evaluation sessions currently held.
    pub sessions: u64,
    /// Metric entries across all shared caches.
    pub entries: u64,
    /// Cache hits across all shared caches.
    pub hits: u64,
    /// Cache computes across all shared caches.
    pub computes: u64,
    /// Sessions evicted so far by the TTL/LRU bound.
    pub evictions: u64,
    /// The server's protocol version (matches the handshake).
    pub version: u32,
    /// The feature bits the server announced on this connection.
    pub features: u32,
    /// Server build identifier (crate version string).
    pub build: String,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness reply.
    Pong,
    /// The evaluated frontier.
    Frontier(FrontierReport),
    /// Admission control turned the request away (queue full). The
    /// request was not started; retrying later is safe.
    Rejected {
        /// Human-readable backpressure diagnostic.
        reason: String,
    },
    /// The request ran and failed.
    Error {
        /// The exit code a CLI would have used (see [`mhe_core::error`]).
        code: u8,
        /// The rendered error.
        message: String,
    },
    /// Service counters.
    Stats(StatsReport),
    /// First frame from a token-bearing server (before any request is
    /// answered): prove knowledge of the shared token with
    /// [`Request::Auth`] or be turned away with a code-6 error.
    AuthChallenge {
        /// Fresh per-connection nonce to HMAC the token over.
        nonce: [u8; 16],
    },
}

// --- handshake -----------------------------------------------------------

/// Byte length of the version-2 handshake each side writes on connect.
pub const HANDSHAKE_LEN: usize = 12;

/// A decoded handshake: what the peer announced about itself.
///
/// Wire layout (12 bytes, pinned by a golden test): 4 magic bytes
/// `MHES`, then the protocol version as a little-endian `u32`, then the
/// feature bits as a little-endian `u32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handshake {
    /// The peer's protocol version.
    pub version: u32,
    /// The peer's advertised [`FEATURE_FRONTIER`]/[`FEATURE_FLEET`] bits.
    pub features: u32,
}

impl Handshake {
    /// Encodes this side's announcement.
    pub fn encode(self) -> [u8; HANDSHAKE_LEN] {
        let mut h = [0u8; HANDSHAKE_LEN];
        h[..4].copy_from_slice(&MAGIC);
        h[4..8].copy_from_slice(&self.version.to_le_bytes());
        h[8..].copy_from_slice(&self.features.to_le_bytes());
        h
    }

    /// Decodes a peer's announcement, validating only the magic — the
    /// caller decides how to surface a version skew (structurally, not
    /// as a frame error).
    ///
    /// # Errors
    ///
    /// `InvalidData` when the magic is wrong (not an mhe endpoint).
    pub fn decode(h: &[u8; HANDSHAKE_LEN]) -> io::Result<Self> {
        if h[..4] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad handshake magic {:02x?} (not an mhe-server?)", &h[..4]),
            ));
        }
        Ok(Self {
            version: u32::from_le_bytes([h[4], h[5], h[6], h[7]]),
            features: u32::from_le_bytes([h[8], h[9], h[10], h[11]]),
        })
    }

    /// Checks that the peer speaks this build's protocol version.
    ///
    /// # Errors
    ///
    /// `InvalidData` naming both versions on a mismatch.
    pub fn check_version(self) -> io::Result<()> {
        if self.version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("protocol version {} (this side speaks {VERSION})", self.version),
            ));
        }
        Ok(())
    }
}

/// The handshake this build announces, with the given feature bits.
pub fn handshake(features: u32) -> [u8; HANDSHAKE_LEN] {
    Handshake { version: VERSION, features }.encode()
}

/// Client side of the two-way handshake: reads the server's 12 bytes,
/// validates the magic, writes this side's announcement back, and
/// returns the server's (version still unchecked — the caller maps a
/// skew to its own structured error type).
///
/// # Errors
///
/// Read/write errors, or `InvalidData` on a wrong magic.
pub fn client_hello(stream: &mut (impl Read + Write), features: u32) -> io::Result<Handshake> {
    let mut h = [0u8; HANDSHAKE_LEN];
    stream.read_exact(&mut h)?;
    let server = Handshake::decode(&h)?;
    stream.write_all(&handshake(features))?;
    stream.flush()?;
    Ok(server)
}

/// Fills `buf` from a stream whose read timeout doubles as a stop-poll
/// point. Returns `Ok(false)` when `stop()` turned true or the peer
/// closed before sending anything; `Ok(true)` once `buf` is full.
///
/// # Errors
///
/// `UnexpectedEof` when the peer closes mid-buffer; other read errors
/// propagate.
pub fn read_exact_or_stop(
    r: &mut impl Read,
    buf: &mut [u8],
    stop: &dyn Fn() -> bool,
) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed mid-handshake"))
                };
            }
            Ok(n) => filled += n,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if stop() {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

// --- framing -------------------------------------------------------------

/// Writes one length-prefixed frame.
///
/// Every call consults the armed chaos plan (if any): a scheduled frame
/// fault may drop the frame, write it twice, write only its first half
/// (a mid-frame connection tear), or sleep before writing. With no plan
/// armed the fate check is a single uncontended mutex lock.
///
/// # Errors
///
/// Propagates write errors; rejects payloads over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds the {MAX_FRAME}-byte cap", payload.len()),
        ));
    }
    use mhe_core::fault::FrameFate;
    match mhe_core::fault::next_frame_fate() {
        FrameFate::Deliver => write_frame_raw(w, payload),
        FrameFate::Drop => Ok(()),
        FrameFate::Duplicate => {
            write_frame_raw(w, payload)?;
            write_frame_raw(w, payload)
        }
        FrameFate::Truncate => {
            let mut whole = Vec::with_capacity(4 + payload.len());
            whole.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            whole.extend_from_slice(payload);
            w.write_all(&whole[..whole.len() / 2])?;
            w.flush()
        }
        FrameFate::Delay(pause) => {
            std::thread::sleep(pause);
            write_frame_raw(w, payload)
        }
    }
}

fn write_frame_raw(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame (blocking until complete).
///
/// # Errors
///
/// Propagates read errors; rejects frames over [`MAX_FRAME`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// An incremental frame reader over a stream with a read timeout.
///
/// [`FrameReader::read_frame`] accumulates partial reads in an internal
/// buffer, so a timeout mid-frame loses nothing — the server uses the
/// timeouts as drain poll points, not as deadlines.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a stream.
    pub fn new(inner: R) -> Self {
        Self { inner, buf: Vec::new() }
    }

    /// Reads the next complete frame. Returns `Ok(None)` on a clean EOF
    /// at a frame boundary, or — when `stop()` turns true — on a timeout
    /// with no frame in progress (graceful drain).
    ///
    /// # Errors
    ///
    /// Propagates read errors; EOF mid-frame is `UnexpectedEof`;
    /// over-long frames are `InvalidData`.
    pub fn read_frame(&mut self, stop: &dyn Fn() -> bool) -> io::Result<Option<Vec<u8>>> {
        let mut chunk = [0u8; 4096];
        loop {
            if self.buf.len() >= 4 {
                let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]])
                    as usize;
                if len > MAX_FRAME {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
                    ));
                }
                if self.buf.len() >= 4 + len {
                    let payload = self.buf[4..4 + len].to_vec();
                    self.buf.drain(..4 + len);
                    return Ok(Some(payload));
                }
            }
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-frame",
                        ))
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    // Only abandon the wait at a frame boundary: a client
                    // that already started a frame gets to finish it.
                    if stop() && self.buf.is_empty() {
                        return Ok(None);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

// --- payload encoding ----------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn raw(&mut self, bytes: &[u8]) {
        self.0.extend_from_slice(bytes);
    }
}

struct Dec<'a> {
    buf: &'a [u8],
}

fn short() -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, "truncated protocol payload")
}

impl<'a> Dec<'a> {
    fn u8(&mut self) -> io::Result<u8> {
        let (&v, rest) = self.buf.split_first().ok_or_else(short)?;
        self.buf = rest;
        Ok(v)
    }
    fn u32(&mut self) -> io::Result<u32> {
        if self.buf.len() < 4 {
            return Err(short());
        }
        let (head, rest) = self.buf.split_at(4);
        self.buf = rest;
        Ok(u32::from_le_bytes([head[0], head[1], head[2], head[3]]))
    }
    fn u64(&mut self) -> io::Result<u64> {
        if self.buf.len() < 8 {
            return Err(short());
        }
        let (head, rest) = self.buf.split_at(8);
        self.buf = rest;
        let mut b = [0u8; 8];
        b.copy_from_slice(head);
        Ok(u64::from_le_bytes(b))
    }
    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn str(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        if self.buf.len() < len {
            return Err(short());
        }
        let (head, rest) = self.buf.split_at(len);
        self.buf = rest;
        String::from_utf8(head.to_vec())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad utf-8: {e}")))
    }
    fn raw<const N: usize>(&mut self) -> io::Result<[u8; N]> {
        if self.buf.len() < N {
            return Err(short());
        }
        let (head, rest) = self.buf.split_at(N);
        self.buf = rest;
        let mut b = [0u8; N];
        b.copy_from_slice(head);
        Ok(b)
    }
    fn finish(self) -> io::Result<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} trailing bytes after payload", self.buf.len()),
            ))
        }
    }
}

fn bad(what: &str, v: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("bad {what}: {v}"))
}

fn enc_policy(e: &mut Enc, p: Policy) {
    let (tag, seed) = match p {
        Policy::Lru => (0u8, 0u64),
        Policy::Fifo => (1, 0),
        Policy::PlruTree => (2, 0),
        Policy::Random(seed) => (3, seed),
    };
    e.u8(tag);
    e.u64(seed);
}

fn dec_policy(d: &mut Dec) -> io::Result<Policy> {
    let tag = d.u8()?;
    let seed = d.u64()?;
    match tag {
        0 => Ok(Policy::Lru),
        1 => Ok(Policy::Fifo),
        2 => Ok(Policy::PlruTree),
        3 => Ok(Policy::Random(seed)),
        other => Err(bad("policy tag", other)),
    }
}

fn enc_design(e: &mut Enc, design: &CacheDesign) {
    e.u32(design.config.sets);
    e.u32(design.config.assoc);
    e.u32(design.config.line_words);
    enc_policy(e, design.config.policy);
    e.u32(design.ports);
}

fn dec_design(d: &mut Dec) -> io::Result<CacheDesign> {
    let sets = d.u32()?;
    let assoc = d.u32()?;
    let line_words = d.u32()?;
    let policy = dec_policy(d)?;
    let ports = d.u32()?;
    Ok(CacheDesign { config: CacheConfig::new(sets, assoc, line_words).with_policy(policy), ports })
}

fn enc_sampling_config(e: &mut Enc, s: &Option<SamplingConfig>) {
    match s {
        None => e.u8(0),
        Some(s) => {
            e.u8(1);
            e.u64(s.interval_accesses as u64);
            e.u64(s.clusters as u64);
            e.u64(s.warmup as u64);
            e.u64(s.seed);
            e.u32(s.histogram_sets);
        }
    }
}

fn dec_sampling_config(d: &mut Dec) -> io::Result<Option<SamplingConfig>> {
    match d.u8()? {
        0 => Ok(None),
        1 => Ok(Some(SamplingConfig {
            interval_accesses: d.u64()? as usize,
            clusters: d.u64()? as usize,
            warmup: d.u64()? as usize,
            seed: d.u64()?,
            histogram_sets: d.u32()?,
        })),
        other => Err(bad("sampling flag", other)),
    }
}

fn enc_sampling_metrics(e: &mut Enc, s: &Option<SamplingMetrics>) {
    match s {
        None => e.u8(0),
        Some(s) => {
            e.u8(1);
            e.u64(s.intervals);
            e.u64(s.clusters);
            e.u64(s.representative_accesses);
            e.u64(s.total_accesses);
            e.f64(s.error_bound);
        }
    }
}

fn dec_sampling_metrics(d: &mut Dec) -> io::Result<Option<SamplingMetrics>> {
    match d.u8()? {
        0 => Ok(None),
        1 => Ok(Some(SamplingMetrics {
            intervals: d.u64()?,
            clusters: d.u64()?,
            representative_accesses: d.u64()?,
            total_accesses: d.u64()?,
            error_bound: d.f64()?,
        })),
        other => Err(bad("sampling-metrics flag", other)),
    }
}

/// Encodes a request payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut e = Enc(Vec::new());
    match req {
        Request::Ping => e.u8(0),
        Request::Frontier(f) => {
            e.u8(1);
            e.str(&f.spec_text);
            e.u8(u8::from(f.heuristic));
            enc_sampling_config(&mut e, &f.sampling);
            match &f.policies {
                None => e.u8(0),
                Some(ps) => {
                    e.u8(1);
                    e.u32(ps.len() as u32);
                    for &p in ps {
                        enc_policy(&mut e, p);
                    }
                }
            }
        }
        Request::Stats => e.u8(2),
        Request::Cancel => e.u8(3),
        Request::Auth { proof } => {
            e.u8(4);
            e.raw(proof);
        }
    }
    e.0
}

/// Decodes a request payload.
///
/// # Errors
///
/// `InvalidData` on any malformed field, truncation, or trailing bytes.
pub fn decode_request(payload: &[u8]) -> io::Result<Request> {
    let mut d = Dec { buf: payload };
    let req = match d.u8()? {
        0 => Request::Ping,
        1 => {
            let spec_text = d.str()?;
            let heuristic = d.u8()? != 0;
            let sampling = dec_sampling_config(&mut d)?;
            let policies = match d.u8()? {
                0 => None,
                1 => {
                    let n = d.u32()? as usize;
                    if n > 64 {
                        return Err(bad("policy-list length", n));
                    }
                    let mut ps = Vec::with_capacity(n);
                    for _ in 0..n {
                        ps.push(dec_policy(&mut d)?);
                    }
                    Some(ps)
                }
                other => return Err(bad("policies flag", other)),
            };
            Request::Frontier(FrontierRequest { spec_text, heuristic, sampling, policies })
        }
        2 => Request::Stats,
        3 => Request::Cancel,
        4 => Request::Auth { proof: d.raw()? },
        other => return Err(bad("request tag", other)),
    };
    d.finish()?;
    Ok(req)
}

/// Encodes a response payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut e = Enc(Vec::new());
    match resp {
        Response::Pong => e.u8(0),
        Response::Frontier(r) => {
            e.u8(1);
            enc_sampling_metrics(&mut e, &r.sampling);
            e.u32(r.rows.len() as u32);
            for row in &r.rows {
                e.str(&row.processor);
                enc_design(&mut e, &row.icache);
                enc_design(&mut e, &row.dcache);
                enc_design(&mut e, &row.ucache);
                e.f64(row.cost);
                e.f64(row.time);
            }
            e.u64(r.hits);
            e.u64(r.computes);
        }
        Response::Rejected { reason } => {
            e.u8(2);
            e.str(reason);
        }
        Response::Error { code, message } => {
            e.u8(3);
            e.u8(*code);
            e.str(message);
        }
        Response::Stats(s) => {
            e.u8(4);
            e.u64(s.sessions);
            e.u64(s.entries);
            e.u64(s.hits);
            e.u64(s.computes);
            e.u64(s.evictions);
            e.u32(s.version);
            e.u32(s.features);
            e.str(&s.build);
        }
        Response::AuthChallenge { nonce } => {
            e.u8(5);
            e.raw(nonce);
        }
    }
    e.0
}

/// Decodes a response payload.
///
/// # Errors
///
/// `InvalidData` on any malformed field, truncation, or trailing bytes.
pub fn decode_response(payload: &[u8]) -> io::Result<Response> {
    let mut d = Dec { buf: payload };
    let resp = match d.u8()? {
        0 => Response::Pong,
        1 => {
            let sampling = dec_sampling_metrics(&mut d)?;
            let n = d.u32()? as usize;
            if n > 1 << 20 {
                return Err(bad("row count", n));
            }
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let processor = d.str()?;
                let icache = dec_design(&mut d)?;
                let dcache = dec_design(&mut d)?;
                let ucache = dec_design(&mut d)?;
                let cost = d.f64()?;
                let time = d.f64()?;
                rows.push(FrontierRow { processor, icache, dcache, ucache, cost, time });
            }
            let hits = d.u64()?;
            let computes = d.u64()?;
            Response::Frontier(FrontierReport { sampling, rows, hits, computes })
        }
        2 => Response::Rejected { reason: d.str()? },
        3 => Response::Error { code: d.u8()?, message: d.str()? },
        4 => Response::Stats(StatsReport {
            sessions: d.u64()?,
            entries: d.u64()?,
            hits: d.u64()?,
            computes: d.u64()?,
            evictions: d.u64()?,
            version: d.u32()?,
            features: d.u32()?,
            build: d.str()?,
        }),
        5 => Response::AuthChallenge { nonce: d.raw()? },
        other => return Err(bad("response tag", other)),
    };
    d.finish()?;
    Ok(resp)
}

// --- fleet frames (protocol v2) ------------------------------------------

/// Cap on `(MetricKey, f64)` points in one frame; larger lists are split
/// across frames by the sender and rejected as corruption by the reader.
pub const MAX_POINTS: usize = 1 << 20;

/// The job a coordinator hands a worker on attach: everything needed to
/// rebuild the same reference evaluation and enumerate the same work
/// plan the batch walk would, spec-text-only (no paths cross the wire).
#[derive(Debug, Clone, PartialEq)]
pub struct JobOffer {
    /// Coordinator-assigned worker id (dense, from 0, attach order).
    pub worker_id: u32,
    /// The design-space specification, verbatim spec-file text.
    pub spec_text: String,
    /// Interval-sampling override, as in [`FrontierRequest`].
    pub sampling: Option<SamplingConfig>,
    /// Replacement-policy override, as in [`FrontierRequest`].
    pub policies: Option<Vec<Policy>>,
    /// Total shard count the key space is partitioned into.
    pub shard_count: u32,
}

/// Frames a fleet worker sends to its coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerFrame {
    /// First frame after the handshake: request a [`JobOffer`].
    Hello,
    /// Ready for work: lease the next unclaimed shard.
    NeedShard,
    /// A batch of evaluated points from the worker's current shard.
    Points {
        /// The shard these points belong to.
        shard: u32,
        /// Evaluated `(key, value)` pairs, `f64`s bit-exact.
        points: Vec<(MetricKey, f64)>,
    },
    /// Every point of the shard has been streamed.
    ShardDone {
        /// The finished shard.
        shard: u32,
    },
    /// Liveness signal renewing this worker's leases.
    Heartbeat,
    /// Answer to [`CoordFrame::AuthChallenge`]: HMAC proof of the
    /// shared fleet token over the coordinator's nonce.
    Auth {
        /// `HMAC-SHA256(token, nonce)` (see [`mhe_core::auth::proof`]).
        proof: [u8; 32],
    },
}

/// Frames a coordinator sends to a worker.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordFrame {
    /// Reply to [`WorkerFrame::Hello`].
    Job(JobOffer),
    /// A shard lease. `prefill` carries points already merged for this
    /// shard (from a checkpoint or a dead worker's partial stream), so
    /// stolen work is never recomputed.
    Assign {
        /// The leased shard.
        shard: u32,
        /// Already-known `(key, value)` pairs within the shard.
        prefill: Vec<(MetricKey, f64)>,
    },
    /// Every shard is done; the worker should disconnect cleanly.
    NoMoreWork,
    /// The sweep is being abandoned; carries the coordinator's error.
    Abort {
        /// Rendered coordinator-side failure.
        message: String,
    },
    /// No shard is free *right now* (all leased, none done) — keep
    /// waiting; sent periodically so the worker's read deadline is a
    /// dead-coordinator detector, not a stall false-positive.
    Wait,
    /// First frame from a token-bearing coordinator: prove knowledge of
    /// the shared fleet token with [`WorkerFrame::Auth`] before any
    /// [`WorkerFrame::Hello`] is answered.
    AuthChallenge {
        /// Fresh per-connection nonce to HMAC the token over.
        nonce: [u8; 16],
    },
    /// Authentication failed; the coordinator closes the connection.
    Denied {
        /// Human-readable rejection (no secrets).
        message: String,
    },
}

fn enc_key(e: &mut Enc, key: &MetricKey) -> io::Result<()> {
    cache_db::write_key(&mut e.0, key)
}

fn enc_points(e: &mut Enc, points: &[(MetricKey, f64)]) -> io::Result<()> {
    if points.len() > MAX_POINTS {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{} points exceed the {MAX_POINTS}-point frame cap", points.len()),
        ));
    }
    e.u32(points.len() as u32);
    for (key, value) in points {
        enc_key(e, key)?;
        e.f64(*value);
    }
    Ok(())
}

fn dec_points(d: &mut Dec) -> io::Result<Vec<(MetricKey, f64)>> {
    let n = d.u32()? as usize;
    if n > MAX_POINTS {
        return Err(bad("point count", n));
    }
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        let key = cache_db::read_key(&mut d.buf)?;
        points.push((key, d.f64()?));
    }
    Ok(points)
}

/// Encodes a worker→coordinator frame payload.
///
/// # Errors
///
/// `InvalidInput` when a point batch exceeds [`MAX_POINTS`].
pub fn encode_worker_frame(frame: &WorkerFrame) -> io::Result<Vec<u8>> {
    let mut e = Enc(Vec::new());
    match frame {
        WorkerFrame::Hello => e.u8(0x10),
        WorkerFrame::NeedShard => e.u8(0x11),
        WorkerFrame::Points { shard, points } => {
            e.u8(0x12);
            e.u32(*shard);
            enc_points(&mut e, points)?;
        }
        WorkerFrame::ShardDone { shard } => {
            e.u8(0x13);
            e.u32(*shard);
        }
        WorkerFrame::Heartbeat => e.u8(0x14),
        WorkerFrame::Auth { proof } => {
            e.u8(0x15);
            e.raw(proof);
        }
    }
    Ok(e.0)
}

/// Decodes a worker→coordinator frame payload.
///
/// # Errors
///
/// `InvalidData` on any malformed field, truncation, or trailing bytes.
pub fn decode_worker_frame(payload: &[u8]) -> io::Result<WorkerFrame> {
    let mut d = Dec { buf: payload };
    let frame = match d.u8()? {
        0x10 => WorkerFrame::Hello,
        0x11 => WorkerFrame::NeedShard,
        0x12 => {
            let shard = d.u32()?;
            let points = dec_points(&mut d)?;
            WorkerFrame::Points { shard, points }
        }
        0x13 => WorkerFrame::ShardDone { shard: d.u32()? },
        0x14 => WorkerFrame::Heartbeat,
        0x15 => WorkerFrame::Auth { proof: d.raw()? },
        other => return Err(bad("worker frame tag", other)),
    };
    d.finish()?;
    Ok(frame)
}

/// Encodes a coordinator→worker frame payload.
///
/// # Errors
///
/// `InvalidInput` when a prefill batch exceeds [`MAX_POINTS`].
pub fn encode_coord_frame(frame: &CoordFrame) -> io::Result<Vec<u8>> {
    let mut e = Enc(Vec::new());
    match frame {
        CoordFrame::Job(job) => {
            e.u8(0x20);
            e.u32(job.worker_id);
            e.str(&job.spec_text);
            enc_sampling_config(&mut e, &job.sampling);
            match &job.policies {
                None => e.u8(0),
                Some(ps) => {
                    e.u8(1);
                    e.u32(ps.len() as u32);
                    for &p in ps {
                        enc_policy(&mut e, p);
                    }
                }
            }
            e.u32(job.shard_count);
        }
        CoordFrame::Assign { shard, prefill } => {
            e.u8(0x21);
            e.u32(*shard);
            enc_points(&mut e, prefill)?;
        }
        CoordFrame::NoMoreWork => e.u8(0x22),
        CoordFrame::Abort { message } => {
            e.u8(0x23);
            e.str(message);
        }
        CoordFrame::Wait => e.u8(0x24),
        CoordFrame::AuthChallenge { nonce } => {
            e.u8(0x25);
            e.raw(nonce);
        }
        CoordFrame::Denied { message } => {
            e.u8(0x26);
            e.str(message);
        }
    }
    Ok(e.0)
}

/// Decodes a coordinator→worker frame payload.
///
/// # Errors
///
/// `InvalidData` on any malformed field, truncation, or trailing bytes.
pub fn decode_coord_frame(payload: &[u8]) -> io::Result<CoordFrame> {
    let mut d = Dec { buf: payload };
    let frame = match d.u8()? {
        0x20 => {
            let worker_id = d.u32()?;
            let spec_text = d.str()?;
            let sampling = dec_sampling_config(&mut d)?;
            let policies = match d.u8()? {
                0 => None,
                1 => {
                    let n = d.u32()? as usize;
                    if n > 64 {
                        return Err(bad("policy-list length", n));
                    }
                    let mut ps = Vec::with_capacity(n);
                    for _ in 0..n {
                        ps.push(dec_policy(&mut d)?);
                    }
                    Some(ps)
                }
                other => return Err(bad("policies flag", other)),
            };
            let shard_count = d.u32()?;
            CoordFrame::Job(JobOffer { worker_id, spec_text, sampling, policies, shard_count })
        }
        0x21 => {
            let shard = d.u32()?;
            let prefill = dec_points(&mut d)?;
            CoordFrame::Assign { shard, prefill }
        }
        0x22 => CoordFrame::NoMoreWork,
        0x23 => CoordFrame::Abort { message: d.str()? },
        0x24 => CoordFrame::Wait,
        0x25 => CoordFrame::AuthChallenge { nonce: d.raw()? },
        0x26 => CoordFrame::Denied { message: d.str()? },
        other => return Err(bad("coord frame tag", other)),
    };
    d.finish()?;
    Ok(frame)
}

/// A generous read timeout for blocking client-side reads — long
/// evaluation requests keep the connection silent while the walk runs.
pub const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(600);

#[cfg(test)]
mod tests {
    use super::*;

    fn designs() -> (CacheDesign, CacheDesign, CacheDesign) {
        (
            CacheDesign { config: CacheConfig::from_bytes(1024, 1, 32), ports: 1 },
            CacheDesign {
                config: CacheConfig::from_bytes(4096, 2, 32).with_policy(Policy::Fifo),
                ports: 2,
            },
            CacheDesign {
                config: CacheConfig::from_bytes(16 << 10, 2, 64).with_policy(Policy::Random(7)),
                ports: 1,
            },
        )
    }

    #[test]
    fn requests_round_trip() {
        let (_, _, _) = designs();
        let reqs = [
            Request::Ping,
            Request::Stats,
            Request::Cancel,
            Request::Auth { proof: [0xA5; 32] },
            Request::Frontier(FrontierRequest {
                spec_text: "[processors]\nkinds = 1111\n".into(),
                heuristic: true,
                sampling: Some(SamplingConfig {
                    interval_accesses: 8192,
                    clusters: 88,
                    warmup: 16384,
                    ..Default::default()
                }),
                policies: Some(vec![Policy::Lru, Policy::Random(0xDEAD)]),
            }),
            Request::Frontier(FrontierRequest {
                spec_text: String::new(),
                heuristic: false,
                sampling: None,
                policies: None,
            }),
        ];
        for req in &reqs {
            let bytes = encode_request(req);
            assert_eq!(&decode_request(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        let (i, d, u) = designs();
        let resps = [
            Response::Pong,
            Response::Rejected { reason: "queue full".into() },
            Response::Error { code: 4, message: "worker panic in walk".into() },
            Response::Stats(StatsReport {
                sessions: 2,
                entries: 99,
                hits: 5,
                computes: 94,
                evictions: 3,
                version: VERSION,
                features: FEATURE_FRONTIER | FEATURE_AUTH,
                build: env!("CARGO_PKG_VERSION").into(),
            }),
            Response::AuthChallenge { nonce: [0x5A; 16] },
            Response::Frontier(FrontierReport {
                sampling: Some(SamplingMetrics {
                    intervals: 10,
                    clusters: 4,
                    representative_accesses: 4000,
                    total_accesses: 80_000,
                    error_bound: 0.012345,
                }),
                rows: vec![FrontierRow {
                    processor: "3221".into(),
                    icache: i,
                    dcache: d,
                    ucache: u,
                    cost: 123.456_789_f64,
                    time: f64::from_bits(0x40c104563027ee60),
                }],
                hits: 7,
                computes: 13,
            }),
        ];
        for resp in &resps {
            let bytes = encode_response(resp);
            assert_eq!(&decode_response(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[9]).is_err());
        assert!(decode_response(&[1, 2]).is_err());
        // Trailing garbage is corruption, not padding.
        let mut bytes = encode_request(&Request::Ping);
        bytes.push(0);
        assert!(decode_request(&bytes).is_err());
    }

    /// Golden pin of the v3 handshake byte layout: `MHES`, version 3 LE,
    /// feature bits LE. Changing any of these bytes is a wire break and
    /// must come with a version bump.
    #[test]
    fn handshake_byte_layout_is_pinned() {
        let h = handshake(FEATURE_FRONTIER | FEATURE_FLEET | FEATURE_AUTH);
        assert_eq!(
            h,
            [b'M', b'H', b'E', b'S', 0x03, 0x00, 0x00, 0x00, 0x07, 0x00, 0x00, 0x00],
            "v3 handshake layout drifted"
        );
        let decoded = Handshake::decode(&h).unwrap();
        assert_eq!(decoded, Handshake { version: 3, features: 7 });
        assert!(decoded.check_version().is_ok());
    }

    #[test]
    fn handshake_checks_magic_and_version() {
        let h = handshake(FEATURE_FRONTIER);
        let mut wrong = h;
        wrong[0] = b'X';
        assert!(Handshake::decode(&wrong).is_err(), "bad magic must be rejected");
        let mut newer = h;
        newer[4] = 99;
        let decoded = Handshake::decode(&newer).unwrap();
        assert_eq!(decoded.version, 99, "magic-valid handshake decodes structurally");
        let err = decoded.check_version().unwrap_err();
        assert!(err.to_string().contains("99"), "{err}");
    }

    #[test]
    fn client_hello_exchanges_both_announcements() {
        struct Duplex {
            incoming: std::io::Cursor<Vec<u8>>,
            outgoing: Vec<u8>,
        }
        impl Read for Duplex {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                self.incoming.read(out)
            }
        }
        impl Write for Duplex {
            fn write(&mut self, data: &[u8]) -> io::Result<usize> {
                self.outgoing.write(data)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut stream = Duplex {
            incoming: std::io::Cursor::new(handshake(FEATURE_FRONTIER | FEATURE_FLEET).to_vec()),
            outgoing: Vec::new(),
        };
        let server = client_hello(&mut stream, FEATURE_FLEET).unwrap();
        assert_eq!(server.features, FEATURE_FRONTIER | FEATURE_FLEET);
        assert_eq!(stream.outgoing, handshake(FEATURE_FLEET).to_vec());
    }

    fn sample_points() -> Vec<(MetricKey, f64)> {
        let app: std::sync::Arc<str> = std::sync::Arc::from("unepic");
        let (i, d, _) = designs();
        vec![
            (MetricKey::icache(&app, i, 1.25), 1234.5),
            (MetricKey::dcache(&app, d), f64::from_bits(0x3FF8_0000_0000_0001)),
            (MetricKey::proc_cycles(&app, "3221"), 9.9e12),
        ]
    }

    #[test]
    fn worker_frames_round_trip() {
        let frames = [
            WorkerFrame::Hello,
            WorkerFrame::NeedShard,
            WorkerFrame::Points { shard: 7, points: sample_points() },
            WorkerFrame::Points { shard: 0, points: Vec::new() },
            WorkerFrame::ShardDone { shard: 31 },
            WorkerFrame::Heartbeat,
            WorkerFrame::Auth { proof: [0x42; 32] },
        ];
        for frame in &frames {
            let bytes = encode_worker_frame(frame).unwrap();
            assert_eq!(&decode_worker_frame(&bytes).unwrap(), frame);
        }
    }

    #[test]
    fn coord_frames_round_trip() {
        let frames = [
            CoordFrame::Job(JobOffer {
                worker_id: 3,
                spec_text: "[processors]\nkinds = 1111\n".into(),
                sampling: Some(SamplingConfig { clusters: 12, ..Default::default() }),
                policies: Some(vec![Policy::Fifo, Policy::Random(0xBEEF)]),
                shard_count: 32,
            }),
            CoordFrame::Job(JobOffer {
                worker_id: 0,
                spec_text: String::new(),
                sampling: None,
                policies: None,
                shard_count: 1,
            }),
            CoordFrame::Assign { shard: 5, prefill: sample_points() },
            CoordFrame::Assign { shard: 0, prefill: Vec::new() },
            CoordFrame::NoMoreWork,
            CoordFrame::Abort { message: "reference build failed".into() },
            CoordFrame::Wait,
            CoordFrame::AuthChallenge { nonce: [0x17; 16] },
            CoordFrame::Denied { message: "authentication failed".into() },
        ];
        for frame in &frames {
            let bytes = encode_coord_frame(frame).unwrap();
            assert_eq!(&decode_coord_frame(&bytes).unwrap(), frame);
        }
    }

    #[test]
    fn malformed_fleet_frames_are_rejected() {
        assert!(decode_worker_frame(&[]).is_err());
        assert!(decode_worker_frame(&[0x7F]).is_err());
        assert!(decode_coord_frame(&[0x7F]).is_err());
        let mut bytes = encode_worker_frame(&WorkerFrame::Heartbeat).unwrap();
        bytes.push(0);
        assert!(decode_worker_frame(&bytes).is_err(), "trailing bytes are corruption");
    }

    #[test]
    fn frame_reader_reassembles_split_frames() {
        struct Dribble(Vec<u8>, usize);
        impl std::io::Read for Dribble {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                out[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let payload = encode_request(&Request::Ping);
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &payload).unwrap();
        write_frame(&mut bytes, &payload).unwrap();
        let mut reader = FrameReader::new(Dribble(bytes, 0));
        let stop = || false;
        assert_eq!(reader.read_frame(&stop).unwrap().as_deref(), Some(&payload[..]));
        assert_eq!(reader.read_frame(&stop).unwrap().as_deref(), Some(&payload[..]));
        assert_eq!(reader.read_frame(&stop).unwrap(), None);
    }

    #[test]
    fn armed_frame_faults_shape_the_byte_stream() {
        use mhe_core::fault::{arm, injection_lock, Fault, FaultPlan};
        let _lock = injection_lock();
        let payload = encode_request(&Request::Ping);
        let mut framed = Vec::new();
        write_frame_raw(&mut framed, &payload).unwrap();

        // drop@0, dup@1, trunc@2 against four writes: the stream carries
        // nothing for the first, the second twice, half of the third, and
        // the fourth intact.
        let _guard = arm(FaultPlan::new(vec![
            Fault::DropFrame { frame: 0 },
            Fault::DupFrame { frame: 1 },
            Fault::TruncFrame { frame: 2 },
        ]));
        let mut out = Vec::new();
        for _ in 0..4 {
            write_frame(&mut out, &payload).unwrap();
        }
        let mut expect = Vec::new();
        expect.extend_from_slice(&framed); // dup, first copy
        expect.extend_from_slice(&framed); // dup, second copy
        expect.extend_from_slice(&framed[..framed.len() / 2]); // trunc
        expect.extend_from_slice(&framed); // delivered
        assert_eq!(out, expect);
    }
}
