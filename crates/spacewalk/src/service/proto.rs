//! The daemon wire protocol: length-prefixed binary frames.
//!
//! One request or response per frame. A frame is a little-endian `u32`
//! payload length followed by that many payload bytes; payloads are
//! hand-rolled tagged binary (varint-free: fixed-width little-endian
//! integers, `f64`s as raw bits so every float round-trips bit-exactly —
//! the same discipline as the cache database format). On connect the
//! server sends an 8-byte handshake (magic `MHES` + version) before any
//! frame, so a client talking to the wrong port fails immediately and
//! loudly instead of hanging on a length prefix that never comes.
//!
//! The protocol is deliberately local: it carries the *spec text* of a
//! walk, not paths, so the daemon never touches the client's filesystem,
//! and frontier rows carry full design identities plus `f64` bit
//! patterns, so a client can render output byte-identical to a batch run.

use crate::cost::CacheDesign;
use mhe_cache::{CacheConfig, Policy};
use mhe_core::metrics::SamplingMetrics;
use mhe_core::SamplingConfig;
use std::io::{self, Read, Write};
use std::time::Duration;

/// Handshake magic the server emits on every fresh connection.
pub const MAGIC: [u8; 4] = *b"MHES";
/// Protocol version, bumped on any incompatible frame-layout change.
pub const VERSION: u32 = 1;
/// Upper bound on a single frame's payload; anything larger is treated as
/// stream corruption rather than an allocation request.
pub const MAX_FRAME: usize = 16 << 20;

/// A design-point query: one full spacewalk over a spec.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierRequest {
    /// The design-space specification, verbatim spec-file text (parsed
    /// server-side by [`crate::spec::Spec::parse`]).
    pub spec_text: String,
    /// Run the heuristic per-cache prewarm before the full walk
    /// (`spacewalker --heuristic`).
    pub heuristic: bool,
    /// Route the reference evaluation through interval sampling
    /// (`spacewalker --sample`).
    pub sampling: Option<SamplingConfig>,
    /// Override every cache space's replacement-policy dimension
    /// (`spacewalker --policy`).
    pub policies: Option<Vec<Policy>>,
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Evaluate a full Pareto frontier.
    Frontier(FrontierRequest),
    /// Service counters (sessions, cache traffic).
    Stats,
}

/// One frontier design, with cost/time carried as exact `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierRow {
    /// Processor (machine description) name.
    pub processor: String,
    /// Instruction-cache design.
    pub icache: CacheDesign,
    /// Data-cache design.
    pub dcache: CacheDesign,
    /// Unified-cache design.
    pub ucache: CacheDesign,
    /// System cost (area units).
    pub cost: f64,
    /// Execution time (cycles).
    pub time: f64,
}

/// A served frontier: everything a client needs to render output
/// byte-identical to an in-process batch run.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierReport {
    /// Sampling provenance when the evaluation was interval-sampled.
    pub sampling: Option<SamplingMetrics>,
    /// Frontier designs in increasing-cost order.
    pub rows: Vec<FrontierRow>,
    /// Evaluation-cache hits accumulated by the serving session's cache.
    pub hits: u64,
    /// Evaluation-cache computes accumulated by the serving session's
    /// cache.
    pub computes: u64,
}

/// Service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsReport {
    /// Warm evaluation sessions currently held.
    pub sessions: u64,
    /// Metric entries across all shared caches.
    pub entries: u64,
    /// Cache hits across all shared caches.
    pub hits: u64,
    /// Cache computes across all shared caches.
    pub computes: u64,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness reply.
    Pong,
    /// The evaluated frontier.
    Frontier(FrontierReport),
    /// Admission control turned the request away (queue full). The
    /// request was not started; retrying later is safe.
    Rejected {
        /// Human-readable backpressure diagnostic.
        reason: String,
    },
    /// The request ran and failed.
    Error {
        /// The exit code a CLI would have used (see [`mhe_core::error`]).
        code: u8,
        /// The rendered error.
        message: String,
    },
    /// Service counters.
    Stats(StatsReport),
}

// --- framing -------------------------------------------------------------

/// The 8 bytes a server writes before its first frame.
pub fn handshake() -> [u8; 8] {
    let mut h = [0u8; 8];
    h[..4].copy_from_slice(&MAGIC);
    h[4..].copy_from_slice(&VERSION.to_le_bytes());
    h
}

/// Validates a handshake read from the server.
///
/// # Errors
///
/// `InvalidData` naming the mismatch (wrong magic or version).
pub fn check_handshake(h: &[u8; 8]) -> io::Result<()> {
    if h[..4] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad handshake magic {:02x?} (not an mhe-server?)", &h[..4]),
        ));
    }
    let version = u32::from_le_bytes([h[4], h[5], h[6], h[7]]);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("protocol version {version} (this client speaks {VERSION})"),
        ));
    }
    Ok(())
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates write errors; rejects payloads over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds the {MAX_FRAME}-byte cap", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame (blocking until complete).
///
/// # Errors
///
/// Propagates read errors; rejects frames over [`MAX_FRAME`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// An incremental frame reader over a stream with a read timeout.
///
/// [`FrameReader::read_frame`] accumulates partial reads in an internal
/// buffer, so a timeout mid-frame loses nothing — the server uses the
/// timeouts as drain poll points, not as deadlines.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a stream.
    pub fn new(inner: R) -> Self {
        Self { inner, buf: Vec::new() }
    }

    /// Reads the next complete frame. Returns `Ok(None)` on a clean EOF
    /// at a frame boundary, or — when `stop()` turns true — on a timeout
    /// with no frame in progress (graceful drain).
    ///
    /// # Errors
    ///
    /// Propagates read errors; EOF mid-frame is `UnexpectedEof`;
    /// over-long frames are `InvalidData`.
    pub fn read_frame(&mut self, stop: &dyn Fn() -> bool) -> io::Result<Option<Vec<u8>>> {
        let mut chunk = [0u8; 4096];
        loop {
            if self.buf.len() >= 4 {
                let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]])
                    as usize;
                if len > MAX_FRAME {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
                    ));
                }
                if self.buf.len() >= 4 + len {
                    let payload = self.buf[4..4 + len].to_vec();
                    self.buf.drain(..4 + len);
                    return Ok(Some(payload));
                }
            }
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-frame",
                        ))
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    // Only abandon the wait at a frame boundary: a client
                    // that already started a frame gets to finish it.
                    if stop() && self.buf.is_empty() {
                        return Ok(None);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

// --- payload encoding ----------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
}

fn short() -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, "truncated protocol payload")
}

impl<'a> Dec<'a> {
    fn u8(&mut self) -> io::Result<u8> {
        let (&v, rest) = self.buf.split_first().ok_or_else(short)?;
        self.buf = rest;
        Ok(v)
    }
    fn u32(&mut self) -> io::Result<u32> {
        if self.buf.len() < 4 {
            return Err(short());
        }
        let (head, rest) = self.buf.split_at(4);
        self.buf = rest;
        Ok(u32::from_le_bytes([head[0], head[1], head[2], head[3]]))
    }
    fn u64(&mut self) -> io::Result<u64> {
        if self.buf.len() < 8 {
            return Err(short());
        }
        let (head, rest) = self.buf.split_at(8);
        self.buf = rest;
        let mut b = [0u8; 8];
        b.copy_from_slice(head);
        Ok(u64::from_le_bytes(b))
    }
    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn str(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        if self.buf.len() < len {
            return Err(short());
        }
        let (head, rest) = self.buf.split_at(len);
        self.buf = rest;
        String::from_utf8(head.to_vec())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad utf-8: {e}")))
    }
    fn finish(self) -> io::Result<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} trailing bytes after payload", self.buf.len()),
            ))
        }
    }
}

fn bad(what: &str, v: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("bad {what}: {v}"))
}

fn enc_policy(e: &mut Enc, p: Policy) {
    let (tag, seed) = match p {
        Policy::Lru => (0u8, 0u64),
        Policy::Fifo => (1, 0),
        Policy::PlruTree => (2, 0),
        Policy::Random(seed) => (3, seed),
    };
    e.u8(tag);
    e.u64(seed);
}

fn dec_policy(d: &mut Dec) -> io::Result<Policy> {
    let tag = d.u8()?;
    let seed = d.u64()?;
    match tag {
        0 => Ok(Policy::Lru),
        1 => Ok(Policy::Fifo),
        2 => Ok(Policy::PlruTree),
        3 => Ok(Policy::Random(seed)),
        other => Err(bad("policy tag", other)),
    }
}

fn enc_design(e: &mut Enc, design: &CacheDesign) {
    e.u32(design.config.sets);
    e.u32(design.config.assoc);
    e.u32(design.config.line_words);
    enc_policy(e, design.config.policy);
    e.u32(design.ports);
}

fn dec_design(d: &mut Dec) -> io::Result<CacheDesign> {
    let sets = d.u32()?;
    let assoc = d.u32()?;
    let line_words = d.u32()?;
    let policy = dec_policy(d)?;
    let ports = d.u32()?;
    Ok(CacheDesign { config: CacheConfig::new(sets, assoc, line_words).with_policy(policy), ports })
}

fn enc_sampling_config(e: &mut Enc, s: &Option<SamplingConfig>) {
    match s {
        None => e.u8(0),
        Some(s) => {
            e.u8(1);
            e.u64(s.interval_accesses as u64);
            e.u64(s.clusters as u64);
            e.u64(s.warmup as u64);
            e.u64(s.seed);
            e.u32(s.histogram_sets);
        }
    }
}

fn dec_sampling_config(d: &mut Dec) -> io::Result<Option<SamplingConfig>> {
    match d.u8()? {
        0 => Ok(None),
        1 => Ok(Some(SamplingConfig {
            interval_accesses: d.u64()? as usize,
            clusters: d.u64()? as usize,
            warmup: d.u64()? as usize,
            seed: d.u64()?,
            histogram_sets: d.u32()?,
        })),
        other => Err(bad("sampling flag", other)),
    }
}

fn enc_sampling_metrics(e: &mut Enc, s: &Option<SamplingMetrics>) {
    match s {
        None => e.u8(0),
        Some(s) => {
            e.u8(1);
            e.u64(s.intervals);
            e.u64(s.clusters);
            e.u64(s.representative_accesses);
            e.u64(s.total_accesses);
            e.f64(s.error_bound);
        }
    }
}

fn dec_sampling_metrics(d: &mut Dec) -> io::Result<Option<SamplingMetrics>> {
    match d.u8()? {
        0 => Ok(None),
        1 => Ok(Some(SamplingMetrics {
            intervals: d.u64()?,
            clusters: d.u64()?,
            representative_accesses: d.u64()?,
            total_accesses: d.u64()?,
            error_bound: d.f64()?,
        })),
        other => Err(bad("sampling-metrics flag", other)),
    }
}

/// Encodes a request payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut e = Enc(Vec::new());
    match req {
        Request::Ping => e.u8(0),
        Request::Frontier(f) => {
            e.u8(1);
            e.str(&f.spec_text);
            e.u8(u8::from(f.heuristic));
            enc_sampling_config(&mut e, &f.sampling);
            match &f.policies {
                None => e.u8(0),
                Some(ps) => {
                    e.u8(1);
                    e.u32(ps.len() as u32);
                    for &p in ps {
                        enc_policy(&mut e, p);
                    }
                }
            }
        }
        Request::Stats => e.u8(2),
    }
    e.0
}

/// Decodes a request payload.
///
/// # Errors
///
/// `InvalidData` on any malformed field, truncation, or trailing bytes.
pub fn decode_request(payload: &[u8]) -> io::Result<Request> {
    let mut d = Dec { buf: payload };
    let req = match d.u8()? {
        0 => Request::Ping,
        1 => {
            let spec_text = d.str()?;
            let heuristic = d.u8()? != 0;
            let sampling = dec_sampling_config(&mut d)?;
            let policies = match d.u8()? {
                0 => None,
                1 => {
                    let n = d.u32()? as usize;
                    if n > 64 {
                        return Err(bad("policy-list length", n));
                    }
                    let mut ps = Vec::with_capacity(n);
                    for _ in 0..n {
                        ps.push(dec_policy(&mut d)?);
                    }
                    Some(ps)
                }
                other => return Err(bad("policies flag", other)),
            };
            Request::Frontier(FrontierRequest { spec_text, heuristic, sampling, policies })
        }
        2 => Request::Stats,
        other => return Err(bad("request tag", other)),
    };
    d.finish()?;
    Ok(req)
}

/// Encodes a response payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut e = Enc(Vec::new());
    match resp {
        Response::Pong => e.u8(0),
        Response::Frontier(r) => {
            e.u8(1);
            enc_sampling_metrics(&mut e, &r.sampling);
            e.u32(r.rows.len() as u32);
            for row in &r.rows {
                e.str(&row.processor);
                enc_design(&mut e, &row.icache);
                enc_design(&mut e, &row.dcache);
                enc_design(&mut e, &row.ucache);
                e.f64(row.cost);
                e.f64(row.time);
            }
            e.u64(r.hits);
            e.u64(r.computes);
        }
        Response::Rejected { reason } => {
            e.u8(2);
            e.str(reason);
        }
        Response::Error { code, message } => {
            e.u8(3);
            e.u8(*code);
            e.str(message);
        }
        Response::Stats(s) => {
            e.u8(4);
            e.u64(s.sessions);
            e.u64(s.entries);
            e.u64(s.hits);
            e.u64(s.computes);
        }
    }
    e.0
}

/// Decodes a response payload.
///
/// # Errors
///
/// `InvalidData` on any malformed field, truncation, or trailing bytes.
pub fn decode_response(payload: &[u8]) -> io::Result<Response> {
    let mut d = Dec { buf: payload };
    let resp = match d.u8()? {
        0 => Response::Pong,
        1 => {
            let sampling = dec_sampling_metrics(&mut d)?;
            let n = d.u32()? as usize;
            if n > 1 << 20 {
                return Err(bad("row count", n));
            }
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let processor = d.str()?;
                let icache = dec_design(&mut d)?;
                let dcache = dec_design(&mut d)?;
                let ucache = dec_design(&mut d)?;
                let cost = d.f64()?;
                let time = d.f64()?;
                rows.push(FrontierRow { processor, icache, dcache, ucache, cost, time });
            }
            let hits = d.u64()?;
            let computes = d.u64()?;
            Response::Frontier(FrontierReport { sampling, rows, hits, computes })
        }
        2 => Response::Rejected { reason: d.str()? },
        3 => Response::Error { code: d.u8()?, message: d.str()? },
        4 => Response::Stats(StatsReport {
            sessions: d.u64()?,
            entries: d.u64()?,
            hits: d.u64()?,
            computes: d.u64()?,
        }),
        other => return Err(bad("response tag", other)),
    };
    d.finish()?;
    Ok(resp)
}

/// A generous read timeout for blocking client-side reads — long
/// evaluation requests keep the connection silent while the walk runs.
pub const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(600);

#[cfg(test)]
mod tests {
    use super::*;

    fn designs() -> (CacheDesign, CacheDesign, CacheDesign) {
        (
            CacheDesign { config: CacheConfig::from_bytes(1024, 1, 32), ports: 1 },
            CacheDesign {
                config: CacheConfig::from_bytes(4096, 2, 32).with_policy(Policy::Fifo),
                ports: 2,
            },
            CacheDesign {
                config: CacheConfig::from_bytes(16 << 10, 2, 64).with_policy(Policy::Random(7)),
                ports: 1,
            },
        )
    }

    #[test]
    fn requests_round_trip() {
        let (_, _, _) = designs();
        let reqs = [
            Request::Ping,
            Request::Stats,
            Request::Frontier(FrontierRequest {
                spec_text: "[processors]\nkinds = 1111\n".into(),
                heuristic: true,
                sampling: Some(SamplingConfig {
                    interval_accesses: 8192,
                    clusters: 88,
                    warmup: 16384,
                    ..Default::default()
                }),
                policies: Some(vec![Policy::Lru, Policy::Random(0xDEAD)]),
            }),
            Request::Frontier(FrontierRequest {
                spec_text: String::new(),
                heuristic: false,
                sampling: None,
                policies: None,
            }),
        ];
        for req in &reqs {
            let bytes = encode_request(req);
            assert_eq!(&decode_request(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        let (i, d, u) = designs();
        let resps = [
            Response::Pong,
            Response::Rejected { reason: "queue full".into() },
            Response::Error { code: 4, message: "worker panic in walk".into() },
            Response::Stats(StatsReport { sessions: 2, entries: 99, hits: 5, computes: 94 }),
            Response::Frontier(FrontierReport {
                sampling: Some(SamplingMetrics {
                    intervals: 10,
                    clusters: 4,
                    representative_accesses: 4000,
                    total_accesses: 80_000,
                    error_bound: 0.012345,
                }),
                rows: vec![FrontierRow {
                    processor: "3221".into(),
                    icache: i,
                    dcache: d,
                    ucache: u,
                    cost: 123.456_789_f64,
                    time: f64::from_bits(0x40c104563027ee60),
                }],
                hits: 7,
                computes: 13,
            }),
        ];
        for resp in &resps {
            let bytes = encode_response(resp);
            assert_eq!(&decode_response(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[9]).is_err());
        assert!(decode_response(&[1, 2]).is_err());
        // Trailing garbage is corruption, not padding.
        let mut bytes = encode_request(&Request::Ping);
        bytes.push(0);
        assert!(decode_request(&bytes).is_err());
    }

    #[test]
    fn handshake_checks_magic_and_version() {
        let h = handshake();
        assert!(check_handshake(&h).is_ok());
        let mut wrong = h;
        wrong[0] = b'X';
        assert!(check_handshake(&wrong).is_err());
        let mut newer = h;
        newer[4] = 99;
        assert!(check_handshake(&newer).is_err());
    }

    #[test]
    fn frame_reader_reassembles_split_frames() {
        struct Dribble(Vec<u8>, usize);
        impl std::io::Read for Dribble {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                out[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let payload = encode_request(&Request::Ping);
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &payload).unwrap();
        write_frame(&mut bytes, &payload).unwrap();
        let mut reader = FrameReader::new(Dribble(bytes, 0));
        let stop = || false;
        assert_eq!(reader.read_frame(&stop).unwrap().as_deref(), Some(&payload[..]));
        assert_eq!(reader.read_frame(&stop).unwrap().as_deref(), Some(&payload[..]));
        assert_eq!(reader.read_frame(&stop).unwrap(), None);
    }
}
