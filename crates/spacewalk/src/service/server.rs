//! The daemon's network face: a TCP accept loop over an [`EvalService`].
//!
//! One thread per connection, one request at a time per connection —
//! which is the per-client fairness policy: a client cannot occupy more
//! than one admission slot, so N clients share the gate's in-flight
//! budget evenly no matter how fast any one of them queues work.
//!
//! Shutdown is a *drain*, not a kill: when the drain flag turns on
//! (programmatically via [`Server::drain_handle`] or by SIGTERM/SIGINT
//! after [`Server::install_signal_drain`]), the listener stops accepting,
//! every connection finishes the request it is serving (reads park on a
//! short timeout and re-check the flag only at frame boundaries), and
//! [`Server::run`] joins them all before returning — so a supervisor that
//! SIGTERMs the daemon gets exit 0 and no half-written frames.

use super::proto::{
    decode_request, encode_response, handshake, read_exact_or_stop, write_frame, FrameReader,
    Handshake, Request, Response, FEATURE_AUTH, FEATURE_FRONTIER, HANDSHAKE_LEN, MAGIC, VERSION,
};
use super::EvalService;
use mhe_core::CancelToken;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long a connection read parks before re-checking the drain flag.
const DRAIN_POLL: Duration = Duration::from_millis(100);
/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// The process-wide drain flag set by the installed signal handler.
static SIG_DRAIN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_drain_signal(_signum: i32) {
    // Only async-signal-safe work here: flip one atomic.
    SIG_DRAIN.store(true, Ordering::SeqCst);
}

/// A running daemon endpoint: listener + service + drain flag.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    service: Arc<EvalService>,
    drain: Arc<AtomicBool>,
    auth_token: Option<String>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) over
    /// `service`. The shared auth token defaults from `MHE_AUTH_TOKEN`
    /// (none = open server); override with [`Server::with_auth_token`].
    ///
    /// # Errors
    ///
    /// Propagates bind / socket-configuration failures.
    pub fn bind(addr: impl ToSocketAddrs, service: Arc<EvalService>) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        // Non-blocking accept so the loop can poll the drain flag.
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            service,
            drain: Arc::new(AtomicBool::new(false)),
            auth_token: mhe_core::env::auth_token().map(str::to_string),
        })
    }

    /// Sets (or clears) the shared token clients must prove knowledge of
    /// before any request is served (announced as [`FEATURE_AUTH`]).
    #[must_use]
    pub fn with_auth_token(mut self, token: Option<String>) -> Self {
        self.auth_token = token;
        self
    }

    /// The actually-bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared drain flag; store `true` to begin a graceful shutdown.
    pub fn drain_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.drain)
    }

    /// Routes SIGTERM and SIGINT into a graceful drain of this process's
    /// servers (they share one process-wide flag; every server polls it).
    pub fn install_signal_drain(&self) {
        type SigHandler = extern "C" fn(i32);
        extern "C" {
            fn signal(signum: i32, handler: SigHandler) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `signal` is the libc std already links; the handler
        // only stores to an atomic, which is async-signal-safe.
        unsafe {
            signal(SIGTERM, on_drain_signal);
            signal(SIGINT, on_drain_signal);
        }
    }

    /// Accepts and serves connections until the drain flag (local handle
    /// or process-wide signal flag) turns on, then joins every
    /// connection thread and returns.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O errors other than the expected
    /// would-block; per-connection errors are contained in their threads.
    pub fn run(&self) -> io::Result<()> {
        let mut workers = Vec::new();
        loop {
            if self.drain.load(Ordering::SeqCst) || SIG_DRAIN.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let service = Arc::clone(&self.service);
                    let drain = Arc::clone(&self.drain);
                    let token = self.auth_token.clone();
                    workers.push(std::thread::spawn(move || {
                        // Per-connection failures end that connection only.
                        let _ = serve_connection(stream, &service, &drain, token.as_deref());
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        for w in workers {
            let _ = w.join();
        }
        // Drained: persist every scope cache so a restart answers warm.
        self.service.persist_all();
        Ok(())
    }
}

/// Serves one connection: two-way handshake, an auth exchange when the
/// server carries a token, then a request/response loop that ends on
/// clean EOF or — at a frame boundary — on drain.
///
/// The server writes its announcement first, then inspects the client's
/// opening bytes. A v2+ client answers with its own 12-byte handshake
/// (leading with the magic); anything else — in particular a v1 client
/// that opens with a frame length prefix — gets a *structured*
/// `Response::Error` naming the version mismatch instead of a cryptic
/// frame error, then the connection closes.
fn serve_connection(
    mut stream: TcpStream,
    service: &EvalService,
    drain: &AtomicBool,
    auth_token: Option<&str>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(DRAIN_POLL))?;
    stream.set_nodelay(true)?;
    let features = FEATURE_FRONTIER | if auth_token.is_some() { FEATURE_AUTH } else { 0 };
    stream.write_all(&handshake(features))?;
    stream.flush()?;
    let mut reader_stream = stream.try_clone()?;
    let stop = || drain.load(Ordering::SeqCst) || SIG_DRAIN.load(Ordering::SeqCst);

    // Client's reply: the magic distinguishes a v2 handshake from a
    // legacy frame (a frame's length prefix can never spell `MHES` —
    // that value is far above MAX_FRAME).
    let mut opening = [0u8; 4];
    if !read_exact_or_stop(&mut reader_stream, &mut opening, &stop)? {
        return Ok(()); // port-scanner or drain: nothing to answer
    }
    if opening == MAGIC {
        let mut rest = [0u8; HANDSHAKE_LEN - 4];
        if !read_exact_or_stop(&mut reader_stream, &mut rest, &stop)? {
            return Ok(());
        }
        let mut full = [0u8; HANDSHAKE_LEN];
        full[..4].copy_from_slice(&opening);
        full[4..].copy_from_slice(&rest);
        let client = Handshake::decode(&full)?;
        if client.version != VERSION {
            return reject_version(&mut stream, client.version);
        }
    } else {
        // Not a handshake: a pre-v2 client skipped straight to a frame.
        return reject_version(&mut stream, 1);
    }

    let mut reader = FrameReader::new(reader_stream);
    if let Some(token) = auth_token {
        if !authenticate(&mut stream, &mut reader, token, &stop)? {
            return Ok(());
        }
    }
    while let Some(payload) = reader.read_frame(&stop)? {
        let response = match decode_request(&payload) {
            Ok(request @ Request::Frontier(_)) => {
                match serve_frontier(service, &mut reader, &mut stream, request)? {
                    Some(response) => response,
                    None => return Ok(()), // client vanished mid-request
                }
            }
            Ok(request) => {
                let mut response = service.respond(request);
                if let Response::Stats(stats) = &mut response {
                    // The service knows its counters; only the connection
                    // knows what features it announced.
                    stats.features = features;
                }
                response
            }
            Err(e) => Response::Error {
                code: mhe_core::EXIT_BAD_CONFIG,
                message: format!("malformed request: {e}"),
            },
        };
        write_frame(&mut stream, &encode_response(&response))?;
    }
    Ok(())
}

/// Challenge/response over the shared token: a fresh nonce out, an HMAC
/// proof back, constant-time compare, then a confirming `Pong` (so the
/// client knows the session is live before its first real request).
/// Returns `Ok(false)` (after a structured code-6 error when the peer is
/// still there) unless the proof verifies.
fn authenticate(
    stream: &mut TcpStream,
    reader: &mut FrameReader<TcpStream>,
    token: &str,
    stop: &dyn Fn() -> bool,
) -> io::Result<bool> {
    let nonce = mhe_core::auth::fresh_nonce();
    write_frame(stream, &encode_response(&Response::AuthChallenge { nonce }))?;
    let Some(payload) = reader.read_frame(stop)? else {
        return Ok(false); // disconnected (or drained) instead of answering
    };
    let verified = matches!(
        decode_request(&payload),
        Ok(Request::Auth { proof }) if mhe_core::auth::verify(token, &nonce, &proof)
    );
    if verified {
        write_frame(stream, &encode_response(&Response::Pong))?;
    } else {
        write_frame(
            stream,
            &encode_response(&Response::Error {
                code: mhe_core::EXIT_UNAUTHORIZED,
                message: "authentication failed (bad or missing token)".into(),
            }),
        )?;
    }
    Ok(verified)
}

/// Runs one frontier request on a scoped worker thread while this thread
/// keeps reading the connection, so a [`Request::Cancel`] frame or a
/// client disconnect cancels the sweep at its next task boundary (the
/// admission slot frees as soon as the sweep stops). Returns `Ok(None)`
/// when the connection died — the response is undeliverable.
fn serve_frontier(
    service: &EvalService,
    reader: &mut FrameReader<TcpStream>,
    stream: &mut TcpStream,
    request: Request,
) -> io::Result<Option<Response>> {
    let cancel = CancelToken::new();
    let mut dead = false;
    let response = std::thread::scope(|scope| {
        let worker_cancel = cancel.clone();
        let handle = scope.spawn(move || {
            let before = mhe_obs::Snapshot::now();
            let response = service.respond_with_cancel(request, Some(worker_cancel));
            if mhe_obs::enabled() {
                mhe_obs::RunReport::since(
                    "mhe-server",
                    mhe_core::parallel::worker_threads(),
                    &before,
                )
                .emit();
            }
            response
        });
        while !handle.is_finished() {
            // The read timeout is the poll point; drain is deliberately
            // ignored here — a draining server finishes what it serves.
            let stop_busy = || handle.is_finished();
            match reader.read_frame(&stop_busy) {
                Ok(Some(frame)) => match decode_request(&frame) {
                    Ok(Request::Cancel) => cancel.cancel(),
                    _ => {
                        let busy = Response::Error {
                            code: mhe_core::EXIT_BAD_CONFIG,
                            message: "a request is already in flight on this connection".into(),
                        };
                        if write_frame(stream, &encode_response(&busy)).is_err() {
                            dead = true;
                            cancel.cancel();
                            break;
                        }
                    }
                },
                Ok(None) => {
                    if !handle.is_finished() {
                        // Clean EOF while the sweep runs: the client hung
                        // up — disconnect-cancellation.
                        dead = true;
                        cancel.cancel();
                    }
                    break;
                }
                Err(_) => {
                    dead = true;
                    cancel.cancel();
                    break;
                }
            }
        }
        match handle.join() {
            Ok(response) => response,
            Err(_) => Response::Error {
                code: mhe_core::EXIT_WORKER_FAILURE,
                message: "request thread panicked".into(),
            },
        }
    });
    if dead {
        return Ok(None);
    }
    Ok(Some(response))
}

/// Answers an incompatible client with a structured version rejection.
fn reject_version(stream: &mut TcpStream, client_version: u32) -> io::Result<()> {
    let response = Response::Error {
        code: mhe_core::EXIT_BAD_CONFIG,
        message: format!(
            "unsupported protocol version {client_version} (this server speaks {VERSION})"
        ),
    };
    write_frame(stream, &encode_response(&response))
}
