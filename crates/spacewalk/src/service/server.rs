//! The daemon's network face: a TCP accept loop over an [`EvalService`].
//!
//! One thread per connection, one request at a time per connection —
//! which is the per-client fairness policy: a client cannot occupy more
//! than one admission slot, so N clients share the gate's in-flight
//! budget evenly no matter how fast any one of them queues work.
//!
//! Shutdown is a *drain*, not a kill: when the drain flag turns on
//! (programmatically via [`Server::drain_handle`] or by SIGTERM/SIGINT
//! after [`Server::install_signal_drain`]), the listener stops accepting,
//! every connection finishes the request it is serving (reads park on a
//! short timeout and re-check the flag only at frame boundaries), and
//! [`Server::run`] joins them all before returning — so a supervisor that
//! SIGTERMs the daemon gets exit 0 and no half-written frames.

use super::proto::{
    decode_request, encode_response, handshake, read_exact_or_stop, write_frame, FrameReader,
    Handshake, Response, FEATURE_FRONTIER, HANDSHAKE_LEN, MAGIC, VERSION,
};
use super::EvalService;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long a connection read parks before re-checking the drain flag.
const DRAIN_POLL: Duration = Duration::from_millis(100);
/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// The process-wide drain flag set by the installed signal handler.
static SIG_DRAIN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_drain_signal(_signum: i32) {
    // Only async-signal-safe work here: flip one atomic.
    SIG_DRAIN.store(true, Ordering::SeqCst);
}

/// A running daemon endpoint: listener + service + drain flag.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    service: Arc<EvalService>,
    drain: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) over
    /// `service`.
    ///
    /// # Errors
    ///
    /// Propagates bind / socket-configuration failures.
    pub fn bind(addr: impl ToSocketAddrs, service: Arc<EvalService>) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        // Non-blocking accept so the loop can poll the drain flag.
        listener.set_nonblocking(true)?;
        Ok(Server { listener, service, drain: Arc::new(AtomicBool::new(false)) })
    }

    /// The actually-bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared drain flag; store `true` to begin a graceful shutdown.
    pub fn drain_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.drain)
    }

    /// Routes SIGTERM and SIGINT into a graceful drain of this process's
    /// servers (they share one process-wide flag; every server polls it).
    pub fn install_signal_drain(&self) {
        type SigHandler = extern "C" fn(i32);
        extern "C" {
            fn signal(signum: i32, handler: SigHandler) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `signal` is the libc std already links; the handler
        // only stores to an atomic, which is async-signal-safe.
        unsafe {
            signal(SIGTERM, on_drain_signal);
            signal(SIGINT, on_drain_signal);
        }
    }

    /// Accepts and serves connections until the drain flag (local handle
    /// or process-wide signal flag) turns on, then joins every
    /// connection thread and returns.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O errors other than the expected
    /// would-block; per-connection errors are contained in their threads.
    pub fn run(&self) -> io::Result<()> {
        let mut workers = Vec::new();
        loop {
            if self.drain.load(Ordering::SeqCst) || SIG_DRAIN.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let service = Arc::clone(&self.service);
                    let drain = Arc::clone(&self.drain);
                    workers.push(std::thread::spawn(move || {
                        // Per-connection failures end that connection only.
                        let _ = serve_connection(stream, &service, &drain);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// Serves one connection: two-way handshake, then a request/response
/// loop that ends on clean EOF or — at a frame boundary — on drain.
///
/// The server writes its announcement first, then inspects the client's
/// opening bytes. A v2+ client answers with its own 12-byte handshake
/// (leading with the magic); anything else — in particular a v1 client
/// that opens with a frame length prefix — gets a *structured*
/// `Response::Error` naming the version mismatch instead of a cryptic
/// frame error, then the connection closes.
fn serve_connection(
    mut stream: TcpStream,
    service: &EvalService,
    drain: &AtomicBool,
) -> io::Result<()> {
    stream.set_read_timeout(Some(DRAIN_POLL))?;
    stream.set_nodelay(true)?;
    stream.write_all(&handshake(FEATURE_FRONTIER))?;
    stream.flush()?;
    let mut reader_stream = stream.try_clone()?;
    let stop = || drain.load(Ordering::SeqCst) || SIG_DRAIN.load(Ordering::SeqCst);

    // Client's reply: the magic distinguishes a v2 handshake from a
    // legacy frame (a frame's length prefix can never spell `MHES` —
    // that value is far above MAX_FRAME).
    let mut opening = [0u8; 4];
    if !read_exact_or_stop(&mut reader_stream, &mut opening, &stop)? {
        return Ok(()); // port-scanner or drain: nothing to answer
    }
    if opening == MAGIC {
        let mut rest = [0u8; HANDSHAKE_LEN - 4];
        if !read_exact_or_stop(&mut reader_stream, &mut rest, &stop)? {
            return Ok(());
        }
        let mut full = [0u8; HANDSHAKE_LEN];
        full[..4].copy_from_slice(&opening);
        full[4..].copy_from_slice(&rest);
        let client = Handshake::decode(&full)?;
        if client.version != VERSION {
            return reject_version(&mut stream, client.version);
        }
    } else {
        // Not a handshake: a pre-v2 client skipped straight to a frame.
        return reject_version(&mut stream, 1);
    }

    let mut reader = FrameReader::new(reader_stream);
    while let Some(payload) = reader.read_frame(&stop)? {
        let response = match decode_request(&payload) {
            Ok(request) => {
                let before = mhe_obs::Snapshot::now();
                let response = service.respond(request);
                if mhe_obs::enabled() {
                    mhe_obs::RunReport::since(
                        "mhe-server",
                        mhe_core::parallel::worker_threads(),
                        &before,
                    )
                    .emit();
                }
                response
            }
            Err(e) => Response::Error {
                code: mhe_core::EXIT_BAD_CONFIG,
                message: format!("malformed request: {e}"),
            },
        };
        write_frame(&mut stream, &encode_response(&response))?;
    }
    Ok(())
}

/// Answers an incompatible client with a structured version rejection.
fn reject_version(stream: &mut TcpStream, client_version: u32) -> io::Result<()> {
    let response = Response::Error {
        code: mhe_core::EXIT_BAD_CONFIG,
        message: format!(
            "unsupported protocol version {client_version} (this server speaks {VERSION})"
        ),
    };
    write_frame(stream, &encode_response(&response))
}
