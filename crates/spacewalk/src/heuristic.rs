//! Heuristic design-space exploration.
//!
//! The paper's `Walkers` module "supports many heuristics for exploring the
//! design space. An exhaustive design space exploration evaluates all
//! designs […] A heuristic only evaluates designs that are likely to be
//! superior than the ones that have already been explored." This module
//! provides a neighbourhood-ascent heuristic for cache spaces: starting
//! from the cheapest design, it expands only the neighbours of current
//! frontier members (size ×2, associativity ×2, next line size, ±port),
//! evaluating a fraction of the space while recovering the frontier of the
//! exhaustive walk in practice.
//!
//! The walk proceeds in *waves*: every unvisited design in the current
//! wave is evaluated in one parallel fan-out against the shared
//! [`EvaluationCache`], then merged into the frontier serially in sorted
//! wave order. Sorting each wave (designs are `Ord`) makes the exploration
//! order — and therefore the result and the evaluated count —
//! deterministic at any thread count.

use crate::cache_db::{EvaluationCache, MetricKey};
use crate::cost::{cache_area, CacheDesign};
use crate::pareto::ParetoSet;
use crate::space::CacheSpace;
use crate::walker::fan_out;
use mhe_cache::CacheConfig;
use mhe_core::MheError;
use std::collections::HashSet;

/// Result of a heuristic walk: the frontier plus exploration statistics.
#[derive(Debug, Clone)]
pub struct HeuristicResult {
    /// Accumulated Pareto frontier.
    pub pareto: ParetoSet<CacheDesign>,
    /// Designs actually evaluated (cache hits included).
    pub evaluated: usize,
    /// Size of the full space.
    pub space_size: usize,
}

/// Walks a cache space by neighbourhood ascent instead of exhaustively.
///
/// `key` names a design's metric in the shared cache and `evaluate`
/// computes it on a miss (e.g. estimated misses at a dilation). Designs
/// are explored outward from the cheapest ones; a neighbour is enqueued
/// only when the current design earned a place on the frontier, which is
/// what prunes the space. Each wave fans out over `threads` workers.
///
/// # Errors
///
/// Propagates the first `evaluate` error in wave order.
pub fn walk_heuristic(
    space: &CacheSpace,
    db: &EvaluationCache,
    threads: usize,
    key: impl Fn(CacheDesign) -> MetricKey + Sync,
    evaluate: impl Fn(CacheDesign) -> Result<f64, MheError> + Sync,
) -> Result<HeuristicResult, MheError> {
    let all = space.enumerate();
    let space_size = all.len();
    let universe: HashSet<CacheDesign> = all.iter().copied().collect();

    // Seeds: the cheapest design for each line size (line size changes
    // miss behaviour non-monotonically, so every line size gets a start).
    let mut seeds: Vec<CacheDesign> = Vec::new();
    for &line in &space.line_bytes {
        if let Some(d) = all
            .iter()
            .filter(|d| d.config.line_bytes() == line)
            .min_by(|a, b| cache_area(a).total_cmp(&cache_area(b)))
        {
            seeds.push(*d);
        }
    }
    seeds.sort_unstable();
    seeds.dedup();

    let mut pareto = ParetoSet::new();
    let mut visited: HashSet<CacheDesign> = HashSet::new();
    let mut wave: Vec<CacheDesign> = seeds;
    let mut evaluated = 0usize;
    while !wave.is_empty() {
        wave.retain(|d| visited.insert(*d));
        mhe_obs::count(mhe_obs::Counter::WalkWaves, 1);
        mhe_obs::count(mhe_obs::Counter::WalkWaveDesigns, wave.len() as u64);
        let results = fan_out(threads, wave, |design| {
            db.get_or_try_insert_with(key(*design), || evaluate(*design)).map(|t| (*design, t))
        })?;
        evaluated += results.len();
        let mut next: Vec<CacheDesign> = Vec::new();
        for (design, time) in results {
            if pareto.insert(design, cache_area(&design), time) {
                next.extend(
                    neighbours(design)
                        .into_iter()
                        .filter(|n| universe.contains(n) && !visited.contains(n)),
                );
            }
        }
        next.sort_unstable();
        next.dedup();
        mhe_obs::record_max(mhe_obs::Counter::WalkFrontierPeak, pareto.len() as u64);
        wave = next;
    }
    Ok(HeuristicResult { pareto, evaluated, space_size })
}

/// Single-parameter moves from a design. Geometry moves preserve the
/// replacement policy — the walk explores within one policy; policy is a
/// space dimension, not a neighbourhood move.
fn neighbours(d: CacheDesign) -> Vec<CacheDesign> {
    let c = d.config;
    let geom = |sets: u32, assoc: u32, line_words: u32| {
        CacheConfig::new(sets, assoc, line_words).with_policy(c.policy)
    };
    let mut out = Vec::with_capacity(6);
    // Grow capacity (more sets).
    out.push(CacheDesign { config: geom(c.sets * 2, c.assoc, c.line_words), ..d });
    // Grow associativity at same capacity.
    if c.sets >= 2 {
        out.push(CacheDesign { config: geom(c.sets / 2, c.assoc * 2, c.line_words), ..d });
    }
    // Grow associativity (and capacity).
    out.push(CacheDesign { config: geom(c.sets, c.assoc * 2, c.line_words), ..d });
    // Change line size at same capacity.
    out.push(CacheDesign { config: geom(c.sets, c.assoc, c.line_words * 2), ..d });
    if c.line_words >= 2 && c.sets >= 2 {
        out.push(CacheDesign { config: geom(c.sets * 2, c.assoc, c.line_words / 2), ..d });
    }
    // More ports.
    out.push(CacheDesign { ports: d.ports + 1, ..d });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SystemSpace;
    use crate::walker::{prepare_evaluation, walk_icache};
    use mhe_cache::Policy;
    use mhe_core::evaluator::EvalConfig;
    use mhe_vliw::ProcessorKind;
    use mhe_workload::Benchmark;
    use std::sync::Arc;

    fn space() -> CacheSpace {
        CacheSpace {
            sizes_bytes: vec![1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10],
            assocs: vec![1, 2, 4],
            line_bytes: vec![16, 32],
            ports: vec![1],
            policies: vec![Policy::Lru],
        }
    }

    fn synthetic_key(app: &Arc<str>, d: CacheDesign) -> MetricKey {
        MetricKey::icache(app, d, 1.0)
    }

    #[test]
    fn heuristic_explores_fewer_designs() {
        // A synthetic metric: misses fall with capacity, with diminishing
        // returns (monotone landscape the heuristic should exploit).
        let db = EvaluationCache::new();
        let app: Arc<str> = Arc::from("synthetic");
        let r = walk_heuristic(
            &space(),
            &db,
            1,
            |d| synthetic_key(&app, d),
            |d| Ok(1e9 / (d.config.size_bytes() as f64).powf(0.8)),
        )
        .unwrap();
        assert!(!r.pareto.is_empty());
        assert!(r.evaluated <= r.space_size);
    }

    #[test]
    fn heuristic_is_deterministic_across_thread_counts() {
        let app: Arc<str> = Arc::from("synthetic");
        let run = |threads: usize| {
            let db = EvaluationCache::new();
            walk_heuristic(
                &space(),
                &db,
                threads,
                |d| synthetic_key(&app, d),
                |d| Ok(1e9 / (d.config.size_bytes() as f64).powf(0.8)),
            )
            .unwrap()
        };
        let (a, b, c) = (run(1), run(2), run(8));
        assert_eq!(a.evaluated, b.evaluated);
        assert_eq!(a.evaluated, c.evaluated);
        let bits = |r: &HeuristicResult| -> Vec<(CacheDesign, u64, u64)> {
            r.pareto
                .points()
                .iter()
                .map(|p| (p.design, p.cost.to_bits(), p.time.to_bits()))
                .collect()
        };
        assert_eq!(bits(&a), bits(&b));
        assert_eq!(bits(&a), bits(&c));
    }

    #[test]
    fn heuristic_propagates_errors() {
        let db = EvaluationCache::new();
        let app: Arc<str> = Arc::from("err");
        let bad = MheError::MissingReference { speculation: false, predication: false };
        let r = walk_heuristic(&space(), &db, 2, |d| synthetic_key(&app, d), |_| Err(bad.clone()));
        assert_eq!(r.unwrap_err(), bad);
    }

    #[test]
    fn heuristic_matches_exhaustive_frontier_on_real_estimates() {
        let system = SystemSpace {
            processors: vec![ProcessorKind::P1111.mdes()],
            icache: space(),
            dcache: CacheSpace {
                sizes_bytes: vec![1024],
                assocs: vec![1],
                line_bytes: vec![32],
                ports: vec![1],
                policies: vec![Policy::Lru],
            },
            ucache: CacheSpace {
                sizes_bytes: vec![64 << 10],
                assocs: vec![4],
                line_bytes: vec![64],
                ports: vec![1],
                policies: vec![Policy::Lru],
            },
        };
        let eval = prepare_evaluation(
            Benchmark::Unepic.generate(),
            &ProcessorKind::P1111.mdes(),
            EvalConfig { events: 40_000, ..EvalConfig::default() },
            &system,
        );
        let d = 1.8;
        let db1 = EvaluationCache::new();
        let exhaustive = walk_icache(&eval, &system.icache, d, &db1).unwrap();
        let db2 = EvaluationCache::new();
        let app: Arc<str> = Arc::from(eval.program().name.as_str());
        let heuristic = walk_heuristic(
            &system.icache,
            &db2,
            eval.config().worker_threads(),
            |design| MetricKey::icache(&app, design, d),
            |design| eval.estimate_icache_misses(design.config, d),
        )
        .unwrap();
        // The heuristic must recover every exhaustive frontier point (same
        // cost/time pairs).
        let mut ex: Vec<(u64, u64)> =
            exhaustive.points().iter().map(|p| (p.cost.to_bits(), p.time.to_bits())).collect();
        let mut he: Vec<(u64, u64)> = heuristic
            .pareto
            .points()
            .iter()
            .map(|p| (p.cost.to_bits(), p.time.to_bits()))
            .collect();
        ex.sort_unstable();
        he.sort_unstable();
        assert_eq!(ex, he, "heuristic missed frontier points");
    }
}
