//! Benchmark: single-pass multi-configuration simulation vs one direct
//! simulation per configuration.
//!
//! Quantifies the paper's first efficiency pillar: "the number of
//! simulations is reduced from the total number of caches in the design
//! space to the number of distinct cache line sizes" — here, 8
//! configurations sharing one line size cost roughly one pass instead of
//! eight.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mhe_cache::{simulate, CacheConfig, SinglePassSim};
use mhe_trace::{StreamKind, TraceGenerator};
use mhe_vliw::{compile::Compiled, ProcessorKind};
use mhe_workload::Benchmark;

fn trace() -> Vec<u64> {
    let program = Benchmark::Unepic.generate();
    let compiled = Compiled::build(&program, &ProcessorKind::P1111.mdes(), None);
    TraceGenerator::new(&program, &compiled, 42)
        .with_event_limit(20_000)
        .stream(StreamKind::Instruction)
        .map(|a| a.addr)
        .collect()
}

fn configs() -> Vec<CacheConfig> {
    let mut v = Vec::new();
    for sets in [32u32, 64, 128, 256] {
        for assoc in [1u32, 2] {
            v.push(CacheConfig::new(sets, assoc, 8));
        }
    }
    v
}

fn bench(c: &mut Criterion) {
    let trace = trace();
    let configs = configs();
    let mut g = c.benchmark_group("single_pass_vs_direct");
    g.sample_size(10);

    g.bench_function("single_pass_8_configs_one_pass", |b| {
        b.iter_batched(
            || SinglePassSim::for_configs(&configs),
            |mut sim| {
                sim.run(trace.iter().copied());
                sim.all_results()
            },
            BatchSize::LargeInput,
        )
    });

    g.bench_function("direct_8_configs_8_passes", |b| {
        b.iter(|| {
            configs.iter().map(|&cfg| simulate(cfg, trace.iter().copied())).collect::<Vec<_>>()
        })
    });

    g.bench_function("direct_1_config_1_pass", |b| {
        b.iter(|| simulate(configs[0], trace.iter().copied()))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
