//! Benchmark: evaluating a non-reference processor's cache misses with the
//! dilation model vs re-simulating its trace.
//!
//! This is the paper's headline economics ("the total evaluation time is
//! reduced by a factor equal to the number of VLIW processors in the design
//! space"): once the reference evaluation exists, each extra processor's
//! cache estimate is pure arithmetic, while the honest alternative pays
//! trace generation + cache simulation again.

use criterion::{criterion_group, criterion_main, Criterion};
use mhe_cache::{Cache, CacheConfig};
use mhe_core::evaluator::{EvalConfig, ReferenceEvaluation};
use mhe_trace::{StreamKind, TraceGenerator};
use mhe_vliw::ProcessorKind;
use mhe_workload::Benchmark;

fn bench(c: &mut Criterion) {
    let icache = CacheConfig::from_bytes(1024, 1, 32);
    let ucache = CacheConfig::from_bytes(16 * 1024, 2, 64);
    let events = 20_000;
    let eval = ReferenceEvaluation::for_benchmark(
        Benchmark::Unepic,
        &ProcessorKind::P1111.mdes(),
        EvalConfig { events, ..EvalConfig::default() },
        &[icache],
        &[],
        &[ucache],
    );
    let target = eval.compile_target(&ProcessorKind::P3221.mdes());
    let d = eval.dilation_of(&ProcessorKind::P3221.mdes());

    let mut g = c.benchmark_group("per_design_point_evaluation");
    g.sample_size(20);

    g.bench_function("dilation_model_estimate", |b| {
        b.iter(|| {
            (
                eval.estimate_icache_misses(icache, d).unwrap(),
                eval.estimate_ucache_misses(ucache, d).unwrap(),
            )
        })
    });

    g.bench_function("resimulate_target_trace", |b| {
        b.iter(|| {
            let mut ic = Cache::new(icache);
            let mut uc = Cache::new(ucache);
            for a in TraceGenerator::new(eval.program(), &target, 42).with_event_limit(events) {
                if StreamKind::Instruction.admits(a.kind) {
                    ic.access(a.addr);
                }
                uc.access(a.addr);
            }
            (ic.stats().misses, uc.stats().misses)
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
