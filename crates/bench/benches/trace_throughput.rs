//! Benchmark: throughput of the pipeline stages — trace generation, the
//! granule trace modeler, and hierarchy simulation.
//!
//! These set the absolute scale of every experiment (the paper's traces ran
//! to 1.65G references; ours are millions, but the per-reference costs are
//! what transfer).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mhe_cache::CacheConfig;
use mhe_cache::{Hierarchy, MemoryDesign, Penalties};
use mhe_model::{ITraceModeler, UTraceModeler};
use mhe_trace::TraceGenerator;
use mhe_vliw::{compile::Compiled, ProcessorKind};
use mhe_workload::Benchmark;

fn bench(c: &mut Criterion) {
    let program = Benchmark::Unepic.generate();
    let compiled = Compiled::build(&program, &ProcessorKind::P1111.mdes(), None);
    let events = 10_000usize;
    let refs = TraceGenerator::new(&program, &compiled, 42).with_event_limit(events).count() as u64;
    let materialized: Vec<mhe_trace::Access> =
        TraceGenerator::new(&program, &compiled, 42).with_event_limit(events).collect();

    let mut g = c.benchmark_group("pipeline_throughput");
    g.sample_size(20);
    g.throughput(Throughput::Elements(refs));

    g.bench_function("trace_generation", |b| {
        b.iter(|| {
            TraceGenerator::new(&program, &compiled, 42)
                .with_event_limit(events)
                .map(|a| a.addr)
                .sum::<u64>()
        })
    });

    g.bench_function("itrace_modeler", |b| {
        b.iter(|| {
            let mut m = ITraceModeler::new(10_000);
            for a in &materialized {
                m.process(a.addr);
            }
            m.finish()
        })
    });

    g.bench_function("utrace_modeler", |b| {
        b.iter(|| {
            let mut m = UTraceModeler::new(10_000);
            for &a in &materialized {
                m.process(a);
            }
            m.finish()
        })
    });

    g.bench_function("hierarchy_simulation", |b| {
        let design = MemoryDesign {
            icache: CacheConfig::from_bytes(1024, 1, 32),
            dcache: CacheConfig::from_bytes(1024, 1, 32),
            ucache: CacheConfig::from_bytes(16 * 1024, 2, 64),
        };
        b.iter(|| {
            let mut h = Hierarchy::new(design, Penalties::default());
            for &a in &materialized {
                h.access(a);
            }
            h.stall_cycles()
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
