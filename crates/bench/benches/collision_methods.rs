//! Benchmark: the two `Coll(S, A, L)` computations — the paper's primary
//! closed form vs the stable tail series (§5.3's "alternate procedure").

use criterion::{criterion_group, criterion_main, Criterion};
use mhe_model::ahh::{collisions, collisions_primary, collisions_tail};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("collision_computation");

    // A regime where both forms are fine (small unified cache).
    let (u_hot, s_hot, a_hot) = (20_000.0f64, 128u32, 2u32);
    g.bench_function("primary_hot_regime", |b| b.iter(|| collisions_primary(u_hot, s_hot, a_hot)));
    g.bench_function("tail_hot_regime", |b| b.iter(|| collisions_tail(u_hot, s_hot, a_hot)));

    // A cancellation regime (large cache, small footprint): the tail series
    // is the only accurate option; measure what the stability costs.
    let (u_cold, s_cold, a_cold) = (2_000.0f64, 4096u32, 8u32);
    g.bench_function("tail_cancellation_regime", |b| {
        b.iter(|| collisions_tail(u_cold, s_cold, a_cold))
    });
    g.bench_function("auto_selection", |b| {
        b.iter(|| collisions(u_hot, s_hot, a_hot) + collisions(u_cold, s_cold, a_cold))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
