//! Per-policy simulation throughput: accesses/second for each
//! replacement policy, on both the direct oracle and the single-pass
//! engine that backs the evaluator.
//!
//! LRU and FIFO are single-pass native (one stack/wavetable pass answers
//! every associativity at once); PLRU and random fall back to an embedded
//! grid of per-configuration direct simulations inside the same pass.
//! This matrix makes the cost of each row visible — and sanity-checks
//! that both engines agree on the miss count before printing it, so a
//! throughput number for a wrong simulator can never be reported.
//!
//! `MHE_EVENTS` bounds the trace length (default from `mhe_bench`).

use mhe_bench::SEED;
use mhe_cache::{Cache, CacheConfig, Policy, SinglePassSim};
use mhe_trace::{StreamKind, TraceGenerator};
use mhe_vliw::compile::Compiled;
use mhe_vliw::ProcessorKind;
use mhe_workload::Benchmark;
use std::time::Instant;

const SET_COUNTS: [u32; 3] = [16, 64, 256];
const MAX_ASSOC: u32 = 4;
const LINE_WORDS: u32 = 8;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    mhe_bench::obs_from_args(&mut args);
    let events = mhe_bench::events();

    let program = Benchmark::Epic.generate();
    let compiled = Compiled::build(&program, &ProcessorKind::P1111.mdes(), None);
    let trace: Vec<u64> = TraceGenerator::new(&program, &compiled, SEED)
        .stream(StreamKind::Instruction)
        .take(events)
        .map(|a| a.addr)
        .collect();
    let grid_points = SET_COUNTS.len() as u64 * u64::from(MAX_ASSOC);
    println!(
        "# Policy matrix (epic, {} accesses, {} sets x assoc 1..={MAX_ASSOC} grid)\n",
        trace.len(),
        SET_COUNTS.len()
    );
    println!(
        "{:<16} {:>6} {:>14} {:>16} {:>12}",
        "policy", "path", "oracle acc/s", "one-pass acc/s", "misses(64,2)"
    );

    for policy in Policy::all() {
        // Direct oracle: one representative configuration.
        let cfg = CacheConfig::new(64, 2, LINE_WORDS).with_policy(policy);
        let start = Instant::now();
        let oracle = Cache::new(cfg).run(trace.iter().copied());
        let oracle_rate = trace.len() as f64 / start.elapsed().as_secs_f64().max(1e-9);

        // Single-pass engine: the whole grid in one pass. Rate counts
        // trace accesses, not grid points — the grid is the payoff.
        let start = Instant::now();
        let mut sim = SinglePassSim::new_with_policy(policy, LINE_WORDS, &SET_COUNTS, MAX_ASSOC);
        sim.run(trace.iter().copied());
        let sp_rate = trace.len() as f64 / start.elapsed().as_secs_f64().max(1e-9);

        let sp_misses = sim.misses(64, 2);
        assert_eq!(
            sp_misses, oracle.misses,
            "{policy}: engines disagree — throughput for a wrong simulator is meaningless"
        );
        let path = if policy.single_pass_native() { "1pass" } else { "grid" };
        println!(
            "{:<16} {:>6} {:>14.0} {:>16.0} {:>12}",
            policy.to_string(),
            path,
            oracle_rate,
            sp_rate,
            sp_misses
        );
    }
    println!(
        "\nThe one-pass column answers all {grid_points} grid configurations at once; \
         native rows (lru, fifo) amortize, fallback rows (plru, random) pay per lane."
    );
}
