//! Evaluation-cost accounting: the paper's §1 arithmetic, measured.
//!
//! The paper's motivating computation: 40 processors × 20 caches per type,
//! with per-trace simulation taking hours, totals "466 days"; hierarchical
//! evaluation plus single-pass simulation collapses this to a handful of
//! simulation runs. This binary measures the same accounting on our
//! substrate: wall-clock for (a) the naive scheme scaled from measured
//! per-pass costs, (b) the paper's scheme, on an actual design space.

use mhe_cache::{Cache, SinglePassSim};
use mhe_core::evaluator::{EvalConfig, ReferenceEvaluation};
use mhe_spacewalk::space::SystemSpace;
use mhe_trace::{StreamKind, TraceGenerator};
use mhe_vliw::ProcessorKind;
use mhe_workload::Benchmark;
use std::time::Instant;

fn main() {
    let b = Benchmark::Ghostscript;
    let space = SystemSpace::paper_default();
    let events = mhe_bench::events();
    let n_proc = space.processors.len();
    let icaches = space.icache.configs();
    let dcaches = space.dcache.configs();
    let ucaches = space.ucache.configs();
    let n_caches = icaches.len() + dcaches.len() + ucaches.len();
    println!("# Evaluation-cost accounting — {b}\n");
    println!(
        "design space: {n_proc} processors, {} I$ + {} D$ + {} U$ = {n_caches} caches",
        icaches.len(),
        dcaches.len(),
        ucaches.len()
    );

    let program = b.generate();
    let reference =
        mhe_vliw::compile::Compiled::build(&program, &ProcessorKind::P1111.mdes(), None);

    // --- Measure one direct simulation pass (trace gen + one cache). ---
    let t0 = Instant::now();
    let mut cache = Cache::new(icaches[0]);
    for a in TraceGenerator::new(&program, &reference, 1)
        .with_event_limit(events)
        .stream(StreamKind::Instruction)
    {
        cache.access(a.addr);
    }
    let per_pass = t0.elapsed();
    println!("\nmeasured cost of ONE trace-generation + single-cache pass: {per_pass:?}");

    // Naive scheme: every (processor, cache) pair simulated on that
    // processor's own trace.
    let naive_passes = n_proc * n_caches;
    println!(
        "naive exhaustive scheme: {naive_passes} passes  ~= {:?}",
        per_pass * naive_passes as u32
    );

    // Paper scheme: reference processor only; one single-pass run per
    // distinct line size per stream (plus the trace-parameter pass).
    let line_sizes = space.icache.distinct_line_words().len()
        + space.dcache.distinct_line_words().len()
        + space.ucache.distinct_line_words().len();
    println!(
        "paper scheme: {line_sizes} single-pass simulations + 2 modeler passes, one processor"
    );

    let t1 = Instant::now();
    let mut sp = SinglePassSim::for_configs(
        &icaches.iter().copied().filter(|c| c.line_words == 8).collect::<Vec<_>>(),
    );
    for a in TraceGenerator::new(&program, &reference, 1)
        .with_event_limit(events)
        .stream(StreamKind::Instruction)
    {
        sp.access(a.addr);
    }
    let single_pass_cost = t1.elapsed();
    println!(
        "measured cost of one SINGLE-PASS run covering {} configurations: {single_pass_cost:?}",
        sp.all_results().len()
    );

    // End-to-end: the real reference evaluation plus estimates for every
    // processor and cache.
    let t2 = Instant::now();
    let eval = ReferenceEvaluation::build(
        program.clone(),
        &ProcessorKind::P1111.mdes(),
        EvalConfig { events, ..EvalConfig::default() },
        &icaches,
        &dcaches,
        &ucaches,
    );
    let build_cost = t2.elapsed();
    let t3 = Instant::now();
    let mut estimates = 0usize;
    for proc in &space.processors {
        let d = eval.dilation_of(proc);
        for &c in &icaches {
            eval.estimate_icache_misses(c, d).unwrap();
            estimates += 1;
        }
        for &c in &ucaches {
            eval.estimate_ucache_misses(c, d).unwrap();
            estimates += 1;
        }
        for &c in &dcaches {
            eval.dcache_misses(c).unwrap();
            estimates += 1;
        }
    }
    let estimate_cost = t3.elapsed();
    println!("\nmeasured end-to-end paper scheme:");
    println!("  reference evaluation (all simulation): {build_cost:?}");
    println!(
        "  {estimates} (processor, cache) miss numbers after that: {estimate_cost:?} \
         (includes {n_proc} target compilations)"
    );
    let naive = per_pass.as_secs_f64() * naive_passes as f64;
    let ours = build_cost.as_secs_f64() + estimate_cost.as_secs_f64();
    println!(
        "\nspeedup over naive exhaustive simulation: {:.1}x (paper's example: ~40x \
         from hierarchy alone, x10 more from single-pass)",
        naive / ours
    );
}
