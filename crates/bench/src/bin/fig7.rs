//! Figure 7: actual / dilated / estimated normalized misses for 085.gcc.
//!
//! The bar-chart values behind the paper's bottom-line comparison: for each
//! of the four cache configurations and each target processor, the misses
//! normalized to the 1111 reference processor's actual misses. (Table 4's
//! gcc rows rendered as bar groups.)
//!
//! The per-target work (compiling the target and simulating its actual and
//! dilated traces) is independent across processors, so targets fan out
//! over a [`ParallelSweep`]; results come back in target order.

use mhe_bench::{
    events, l1_large, l1_small, l2_large, l2_small, simulate_caches, simulate_caches_dilated, SEED,
};
use mhe_cache::CacheConfig;
use mhe_core::evaluator::{EvalConfig, ReferenceEvaluation};
use mhe_core::parallel::ParallelSweep;
use mhe_trace::StreamKind;
use mhe_vliw::ProcessorKind;
use mhe_workload::Benchmark;

fn bar(x: f64) -> String {
    let full = (x * 8.0).round().clamp(0.0, 64.0) as usize;
    "#".repeat(full)
}

fn main() {
    let n = events();
    let eval = ReferenceEvaluation::for_benchmark(
        Benchmark::Gcc,
        &ProcessorKind::P1111.mdes(),
        EvalConfig { events: n, seed: SEED, ..EvalConfig::default() },
        &[l1_small(), l1_large()],
        &[],
        &[l2_small(), l2_large()],
    );
    let configs: [(StreamKind, CacheConfig, &str); 4] = [
        (StreamKind::Instruction, l1_small(), "Misses for 1 KB Instruction Cache"),
        (StreamKind::Instruction, l1_large(), "Misses for 16 KB Instruction Cache"),
        (StreamKind::Unified, l2_small(), "Misses for 16 KB Unified Cache"),
        (StreamKind::Unified, l2_large(), "Misses for 128 KB Unified Cache"),
    ];
    let plan: Vec<(StreamKind, CacheConfig)> = configs.iter().map(|&(k, c, _)| (k, c)).collect();
    let base = simulate_caches(eval.program(), eval.reference(), SEED, n, &plan);

    // One job per target processor; each yields a column of
    // (act, dil, est) triples, one per cache configuration.
    let (columns, sweep) =
        ParallelSweep::new().map_timed(ProcessorKind::TARGETS.to_vec(), |kind| {
            let target = eval.compile_target(&kind.mdes());
            let d = eval.dilation_of(&kind.mdes());
            let act = simulate_caches(eval.program(), &target, SEED, n, &plan);
            let dil = simulate_caches_dilated(eval.program(), eval.reference(), d, SEED, n, &plan);
            configs
                .iter()
                .enumerate()
                .map(|(ci, &(stream, cfg, _))| {
                    let est = match stream {
                        StreamKind::Instruction => eval.estimate_icache_misses(cfg, d).unwrap(),
                        _ => eval.estimate_ucache_misses(cfg, d).unwrap(),
                    };
                    let b0 = base[ci].max(1) as f64;
                    (act[ci] as f64 / b0, dil[ci] as f64 / b0, est / b0)
                })
                .collect::<Vec<(f64, f64, f64)>>()
        });

    println!("# Figure 7: Actual, dilated and estimated misses for 085.gcc\n");
    for (ci, &(_, _, title)) in configs.iter().enumerate() {
        println!("## {title}\n");
        for (ti, kind) in ProcessorKind::TARGETS.iter().enumerate() {
            let (a, d, e) = columns[ti][ci];
            println!("{kind}  Actual {a:>5.2} |{}", bar(a));
            println!("      Dilated {d:>5.2} |{}", bar(d));
            println!("      Est     {e:>5.2} |{}", bar(e));
        }
        println!();
    }
    println!("paper: normalized actual misses reach ~6x for 6332 — assuming memory");
    println!("behaviour is width-independent (all bars = 1.0) would be badly wrong,");
    println!("and the dilation model captures most of the change.");
    eprintln!("[fig7] reference evaluation: {}", eval.metrics());
    eprintln!("[fig7] target sweep: {sweep}");
}
