//! Table 2: relative data-cache miss rates for all benchmarks.
//!
//! Validates the model's step-1 assumption (the data trace is essentially
//! unchanged across processors): the table shows each target processor's
//! *actual* data-cache misses normalized to the reference processor's, for
//! the 1 KB direct-mapped and 16 KB 2-way data caches. The paper finds
//! ratios mostly within ~1.0–1.16 for the large cache, with more scatter
//! on the small direct-mapped cache.
//!
//! Benchmarks are independent, so each one's five-processor column is
//! computed as one [`ParallelSweep`] job; rows come back in benchmark
//! order, so the table is identical for any `MHE_THREADS`.

use mhe_bench::{events, l1_large, l1_small, simulate_caches, SEED};
use mhe_core::parallel::ParallelSweep;
use mhe_trace::StreamKind;
use mhe_vliw::compile::Compiled;
use mhe_vliw::ProcessorKind;
use mhe_workload::{Benchmark, BlockFrequencies};

fn main() {
    let n = events();
    let configs = [l1_small(), l1_large()];
    let names = ["1 KB", "16 KB"];

    // One job per benchmark -> two rows (one per cache configuration) of
    // per-processor ratios, ordered as ProcessorKind::ALL.
    let (rows, sweep) = ParallelSweep::new().map_timed(Benchmark::ALL.to_vec(), |b| {
        let program = b.generate();
        let freq = BlockFrequencies::profile(&program, SEED, 200_000);
        let mut rows: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
        let mut base = [0u64; 2];
        for kind in ProcessorKind::ALL {
            let compiled = Compiled::build(&program, &kind.mdes(), Some(&freq));
            let misses = simulate_caches(
                &program,
                &compiled,
                SEED,
                n,
                &[(StreamKind::Data, configs[0]), (StreamKind::Data, configs[1])],
            );
            for (i, &m) in misses.iter().enumerate() {
                if kind == ProcessorKind::P1111 {
                    base[i] = m.max(1);
                }
                rows[i].push(m as f64 / base[i] as f64);
            }
        }
        rows
    });
    let tables: Vec<Vec<&Vec<f64>>> =
        (0..2).map(|t| rows.iter().map(|r| &r[t]).collect()).collect();

    for (t, name) in names.iter().enumerate() {
        println!("# Table 2: Relative data-cache miss rates ({name})\n");
        println!(
            "{:<14} {:>6} {:>6} {:>6} {:>6} {:>6}",
            "Benchmark", "1111", "2111", "3221", "4221", "6332"
        );
        for (bi, b) in Benchmark::ALL.iter().enumerate() {
            print!("{:<14}", b.name());
            for v in tables[t][bi] {
                print!(" {:>6.2}", v);
            }
            println!();
        }
        println!();
    }
    println!(
        "paper: large-cache ratios mostly 0.99-1.16; small-cache ratios scatter more (0.82-1.90)."
    );
    eprintln!("[table2] benchmark sweep: {sweep}");
}
