//! Spacewalk throughput demonstration: designs evaluated per second at
//! 1 vs N walker threads.
//!
//! Builds one reference evaluation over the paper's default system space
//! (the only simulation work), then times `walk_system` with a cold
//! evaluation cache at one thread and at the machine's worker count
//! (`MHE_THREADS` or available parallelism), reporting wall time and
//! cache-compute throughput. A final warm-cache walk shows the memoized
//! path. The frontiers are checked bit-identical across all runs.
//!
//! On a machine with four or more cores the N-thread walk should show at
//! least 2x speedup; on fewer cores the run still verifies determinism.
//! Nothing is asserted fatally, so the binary is safe to run anywhere.

use mhe_cache::Penalties;
use mhe_core::evaluator::EvalConfig;
use mhe_core::parallel::worker_threads;
use mhe_spacewalk::cache_db::EvaluationCache;
use mhe_spacewalk::space::SystemSpace;
use mhe_spacewalk::walker;
use mhe_vliw::ProcessorKind;
use mhe_workload::Benchmark;
use std::time::Instant;

type FrontierBits = Vec<(String, u64, u64)>;

fn bits(frontier: &mhe_spacewalk::ParetoSet<mhe_spacewalk::SystemPoint>) -> FrontierBits {
    frontier
        .points()
        .iter()
        .map(|p| (p.design.processor.name.clone(), p.cost.to_bits(), p.time.to_bits()))
        .collect()
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    mhe_bench::obs_from_args(&mut args);
    let events = mhe_bench::events();
    let workers = worker_threads();
    let space = SystemSpace::paper_default();
    println!(
        "# Spacewalk speedup (workers = {workers}, events = {events}, {} systems)\n",
        space.combinations()
    );

    let mut eval = walker::prepare_evaluation(
        Benchmark::Unepic.generate(),
        &ProcessorKind::P1111.mdes(),
        EvalConfig { events, seed: mhe_bench::SEED, ..EvalConfig::default() },
        &space,
    );

    let mut runs: Vec<(usize, FrontierBits, f64, u64)> = Vec::new();
    for threads in [1, workers] {
        eval.override_worker_threads(threads);
        let db = EvaluationCache::new();
        let obs_before = mhe_obs::Snapshot::now();
        let start = Instant::now();
        let frontier = walker::walk_system(&eval, &space, Penalties::default(), &db)
            .expect("default space is fully simulated");
        let wall = start.elapsed();
        let (hits, computes) = db.stats();
        let rate = (hits + computes) as f64 / wall.as_secs_f64().max(1e-9);
        println!("## cold cache, {threads} thread(s)");
        println!("  wall       : {wall:>8.3?}");
        println!("  frontier   : {} designs", frontier.len());
        println!("  cache      : {hits} hits / {computes} computes");
        println!("  throughput : {rate:.0} design-metrics/s\n");
        mhe_bench::emit_obs_report(&format!("spacewalk_speedup/cold/{threads}"), &obs_before);
        runs.push((threads, bits(&frontier), wall.as_secs_f64(), computes));
    }

    let identical = runs.iter().all(|(_, b, _, _)| *b == runs[0].1);
    println!("frontiers bit-identical across thread counts: {identical}");
    if !identical {
        eprintln!("[spacewalk_speedup] WARNING: parallel frontier diverges from serial!");
    }
    if runs.len() == 2 && runs[1].0 > 1 {
        println!("speedup at {} threads: {:.2}x", runs[1].0, runs[0].2 / runs[1].2.max(1e-9));
    }

    // Warm cache: the whole walk should be hits.
    eval.override_worker_threads(workers);
    let warm = EvaluationCache::new();
    let _ = walker::walk_system(&eval, &space, Penalties::default(), &warm);
    let obs_before = mhe_obs::Snapshot::now();
    let start = Instant::now();
    let frontier = walker::walk_system(&eval, &space, Penalties::default(), &warm)
        .expect("default space is fully simulated");
    let wall = start.elapsed();
    let (hits, computes) = warm.stats();
    println!("\n## warm cache, {workers} thread(s)");
    println!("  wall       : {wall:>8.3?}");
    println!(
        "  frontier   : {} designs (identical: {})",
        frontier.len(),
        bits(&frontier) == runs[0].1
    );
    println!("  cache      : {hits} hits / {computes} computes across both walks");
    mhe_bench::emit_obs_report("spacewalk_speedup/warm", &obs_before);
    println!("\nOn >= 4 cores the cold walk should report >= 2x speedup; with");
    println!("MHE_THREADS=1 it collapses to 1.0x while producing the same frontier.");
}
