//! Table 4: actual vs dilated vs estimated misses for all benchmarks.
//!
//! For each of the four cache configurations (1 KB and 16 KB instruction
//! caches, 16 KB and 128 KB unified caches), each benchmark, and each
//! target processor, reports three normalized miss counts:
//!
//! * **Act** — simulation of the target processor's actual trace;
//! * **Dil** — simulation of the reference trace with every block dilated
//!   by the text dilation (isolates the uniform-dilation error);
//! * **Est** — the dilation model's analytic estimate (adds the model
//!   error).
//!
//! All normalized to the reference processor's actual misses.
//!
//! This is the heaviest binary: ten benchmarks, each needing a reference
//! evaluation plus eight ground-truth simulations. The benchmarks fan out
//! over a [`ParallelSweep`]; the outer sweep owns all the parallelism, so
//! each job builds its evaluation with `threads: 1` (nesting would
//! oversubscribe without helping). Rows come back in benchmark order.

use mhe_bench::{
    events, l1_large, l1_small, l2_large, l2_small, simulate_caches, simulate_caches_dilated, SEED,
};
use mhe_cache::CacheConfig;
use mhe_core::evaluator::{EvalConfig, ReferenceEvaluation};
use mhe_core::parallel::ParallelSweep;
use mhe_trace::StreamKind;
use mhe_vliw::ProcessorKind;
use mhe_workload::Benchmark;

struct BenchResult {
    name: &'static str,
    /// `[config][target] -> (act, dil, est)` normalized.
    cells: Vec<Vec<(f64, f64, f64)>>,
}

fn main() {
    let n = events();
    let configs: [(StreamKind, CacheConfig, &str); 4] = [
        (StreamKind::Instruction, l1_small(), "1 KB Icache"),
        (StreamKind::Instruction, l1_large(), "16 KB Icache"),
        (StreamKind::Unified, l2_small(), "16 KB Ucache"),
        (StreamKind::Unified, l2_large(), "128 KB Ucache"),
    ];
    let plan: Vec<(StreamKind, CacheConfig)> = configs.iter().map(|&(k, c, _)| (k, c)).collect();

    let (results, sweep) = ParallelSweep::new().map_timed(Benchmark::ALL.to_vec(), |b| {
        eprintln!("[table4] {b} ...");
        let eval = ReferenceEvaluation::for_benchmark(
            b,
            &ProcessorKind::P1111.mdes(),
            EvalConfig { events: n, seed: SEED, threads: 1, ..EvalConfig::default() },
            &[l1_small(), l1_large()],
            &[],
            &[l2_small(), l2_large()],
        );
        let program = eval.program();
        // Reference actual misses (the normalization base).
        let base = simulate_caches(program, eval.reference(), SEED, n, &plan);
        let mut cells: Vec<Vec<(f64, f64, f64)>> = vec![Vec::new(); 4];
        for kind in ProcessorKind::TARGETS {
            let target = eval.compile_target(&kind.mdes());
            let d = eval.dilation_of(&kind.mdes());
            let act = simulate_caches(program, &target, SEED, n, &plan);
            let dil = simulate_caches_dilated(program, eval.reference(), d, SEED, n, &plan);
            for (ci, &(stream, cfg, _)) in configs.iter().enumerate() {
                let est = match stream {
                    StreamKind::Instruction => {
                        eval.estimate_icache_misses(cfg, d).expect("icache space")
                    }
                    _ => eval.estimate_ucache_misses(cfg, d).expect("ucache space"),
                };
                let b0 = base[ci].max(1) as f64;
                cells[ci].push((act[ci] as f64 / b0, dil[ci] as f64 / b0, est / b0));
            }
        }
        BenchResult { name: b.name(), cells }
    });

    for (ci, &(_, _, label)) in configs.iter().enumerate() {
        println!("# Table 4: {label} — normalized Actual / Dilated / Estimated misses\n");
        print!("{:<14}", "Benchmark");
        for kind in ProcessorKind::TARGETS {
            print!("  | {:^20}", kind.name());
        }
        println!();
        print!("{:<14}", "");
        for _ in ProcessorKind::TARGETS {
            print!("  | {:>6} {:>6} {:>6}", "Act", "Dil", "Est");
        }
        println!();
        for r in &results {
            print!("{:<14}", r.name);
            for &(a, d, e) in &r.cells[ci] {
                print!("  | {a:>6.2} {d:>6.2} {e:>6.2}");
            }
            println!();
        }
        println!();
    }
    println!("paper: estimates track actuals better for narrower processors and for");
    println!("instruction caches than for unified caches; 6332 columns scatter most.");
    eprintln!("[table4] benchmark sweep: {sweep}");
}
