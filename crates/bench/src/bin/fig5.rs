//! Figure 5: cumulative dilation distributions for 085.gcc and
//! ghostscript.
//!
//! Plots (as text series) the static and dynamic fractions of basic blocks
//! whose dilation is below each threshold, for the 2111, 3221, and 6332
//! target processors. The paper uses these curves to judge the uniform-
//! dilation assumption: the steeper the rise around the text dilation, the
//! better the assumption.

use mhe_core::dilation::DilationDistribution;
use mhe_vliw::compile::Compiled;
use mhe_vliw::ProcessorKind;
use mhe_workload::{Benchmark, BlockFrequencies};

fn main() {
    let procs = [ProcessorKind::P2111, ProcessorKind::P3221, ProcessorKind::P6332];
    for b in [Benchmark::Gcc, Benchmark::Ghostscript] {
        let program = b.generate();
        let freq = BlockFrequencies::profile(&program, mhe_bench::SEED, 400_000);
        let reference = Compiled::build(&program, &ProcessorKind::P1111.mdes(), Some(&freq));
        let dists: Vec<(ProcessorKind, DilationDistribution)> = procs
            .iter()
            .map(|&k| {
                let target = Compiled::build(&program, &k.mdes(), Some(&freq));
                (k, DilationDistribution::new(&reference, &target, &freq))
            })
            .collect();

        println!("# Figure 5: Dilation distribution — {}\n", b.name());
        print!("{:>9}", "dilation");
        for (k, _) in &dists {
            print!(" {:>9} {:>9}", format!("St{k}"), format!("Dy{k}"));
        }
        println!();
        let mut x = 0.5;
        while x <= 5.0 + 1e-9 {
            print!("{x:>9.2}");
            for (_, d) in &dists {
                print!(" {:>9.3} {:>9.3}", d.static_cdf(x), d.dynamic_cdf(x));
            }
            println!();
            x += 0.25;
        }
        println!();
        for (k, d) in &dists {
            println!(
                "{k}: text dilation {:.2} sits at static CDF {:.2}, dynamic CDF {:.2}; \
                 static quartiles [{:.2}, {:.2}, {:.2}]",
                d.text_dilation(),
                d.static_cdf(d.text_dilation()),
                d.dynamic_cdf(d.text_dilation()),
                d.static_quantile(0.25),
                d.static_quantile(0.5),
                d.static_quantile(0.75),
            );
        }
        println!();
    }
    println!("paper: curves rise from 0 to 1 around the text dilation; the rise is");
    println!("sharper for 2111 than 6332, and dynamic tracks static closely.");
}
