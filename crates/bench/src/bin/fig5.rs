//! Figure 5: cumulative dilation distributions for 085.gcc and
//! ghostscript.
//!
//! Plots (as text series) the static and dynamic fractions of basic blocks
//! whose dilation is below each threshold, for the 2111, 3221, and 6332
//! target processors. The paper uses these curves to judge the uniform-
//! dilation assumption: the steeper the rise around the text dilation, the
//! better the assumption.
//!
//! The two benchmarks (and the three target compilations within each) are
//! independent, so they run concurrently on a [`ParallelSweep`]; output is
//! buffered per benchmark and printed in order, so the report is identical
//! for any `MHE_THREADS`.

use mhe_core::dilation::DilationDistribution;
use mhe_core::parallel::ParallelSweep;
use mhe_vliw::compile::Compiled;
use mhe_vliw::ProcessorKind;
use mhe_workload::{Benchmark, BlockFrequencies};
use std::fmt::Write as _;

fn report(b: Benchmark) -> String {
    let procs = [ProcessorKind::P2111, ProcessorKind::P3221, ProcessorKind::P6332];
    let program = b.generate();
    let freq = BlockFrequencies::profile(&program, mhe_bench::SEED, 400_000);
    let reference = Compiled::build(&program, &ProcessorKind::P1111.mdes(), Some(&freq));
    let dists: Vec<(ProcessorKind, DilationDistribution)> =
        ParallelSweep::new().map(procs.to_vec(), |k| {
            let target = Compiled::build(&program, &k.mdes(), Some(&freq));
            (k, DilationDistribution::new(&reference, &target, &freq))
        });

    let mut out = String::new();
    let _ = writeln!(out, "# Figure 5: Dilation distribution — {}\n", b.name());
    let _ = write!(out, "{:>9}", "dilation");
    for (k, _) in &dists {
        let _ = write!(out, " {:>9} {:>9}", format!("St{k}"), format!("Dy{k}"));
    }
    let _ = writeln!(out);
    let mut x = 0.5;
    while x <= 5.0 + 1e-9 {
        let _ = write!(out, "{x:>9.2}");
        for (_, d) in &dists {
            let _ = write!(out, " {:>9.3} {:>9.3}", d.static_cdf(x), d.dynamic_cdf(x));
        }
        let _ = writeln!(out);
        x += 0.25;
    }
    let _ = writeln!(out);
    for (k, d) in &dists {
        let _ = writeln!(
            out,
            "{k}: text dilation {:.2} sits at static CDF {:.2}, dynamic CDF {:.2}; \
             static quartiles [{:.2}, {:.2}, {:.2}]",
            d.text_dilation(),
            d.static_cdf(d.text_dilation()),
            d.dynamic_cdf(d.text_dilation()),
            d.static_quantile(0.25),
            d.static_quantile(0.5),
            d.static_quantile(0.75),
        );
    }
    out
}

fn main() {
    let (reports, sweep) =
        ParallelSweep::new().map_timed(vec![Benchmark::Gcc, Benchmark::Ghostscript], report);
    for r in reports {
        println!("{r}");
    }
    println!("paper: curves rise from 0 to 1 around the text dilation; the rise is");
    println!("sharper for 2111 than 6332, and dynamic tracks static closely.");
    eprintln!("[fig5] benchmark sweep: {sweep}");
}
