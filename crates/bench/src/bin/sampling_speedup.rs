//! Measures the replay-throughput win of interval-sampled evaluation.
//!
//! The scale story of the sampling subsystem: replaying a captured `.mtr`
//! trace with `--sample` defaults pushes each design-point family through
//! the simulators at ≥ [`GATE_SPEEDUP`]× the throughput of exact full
//! simulation, because only the representative windows are simulated.
//! Concretely the gate compares **grid-simulation throughput** — family
//! addresses simulated per second of single-pass wall, summed over every
//! (stream, line size, policy) family — which is the cost that scales
//! with `grid × trace length`. End-to-end wall time is recorded
//! alongside: it includes the O(N) streaming costs both modes share
//! (decode, trace-parameter modelers) plus the sampled mode's signature
//! scan, so it approaches the simulation ratio only as the grid and
//! trace grow. The measured worst-case relative miss-count error across
//! the grids is *recorded*, not gated (the accuracy gate lives in
//! `tests/sampling_accuracy.rs` at a pinned configuration).
//!
//! Method mirrors `obs_overhead`: capture the trace once, replay it
//! alternately in exact and sampled mode for [`RUNS`] rounds, and keep
//! the minimum wall of each (the least-noise estimate on a shared
//! machine). Results land in machine-readable `results/BENCH_7.json`;
//! exit 1 if the speedup gate fails.
//!
//! Usage: `sampling_speedup` — the dynamic window follows `MHE_EVENTS`.

use mhe_cache::CacheConfig;
use mhe_core::evaluator::{EvalConfig, ReferenceEvaluation};
use mhe_core::SamplingConfig;
use mhe_trace::StreamKind;
use mhe_vliw::Mdes;
use mhe_workload::Benchmark;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::time::{Duration, Instant};

/// Alternating measurement rounds per mode.
const RUNS: usize = 3;
/// Acceptance gate: sampled grid simulation must beat exact full
/// simulation by this factor.
const GATE_SPEEDUP: f64 = 10.0;

fn spaces() -> (Vec<CacheConfig>, Vec<CacheConfig>, Vec<CacheConfig>) {
    let l1 = vec![mhe_bench::l1_small(), mhe_bench::l1_large()];
    (l1.clone(), l1, vec![mhe_bench::l2_small(), mhe_bench::l2_large()])
}

struct Round {
    wall: Duration,
    eval: ReferenceEvaluation,
}

fn replay_once(b: Benchmark, mdes: &Mdes, cfg: EvalConfig, path: &Path) -> Round {
    let (ic, dc, uc) = spaces();
    let start = Instant::now();
    let eval = ReferenceEvaluation::replay_file(b.generate(), mdes, cfg, path, &ic, &dc, &uc)
        .expect("replay of a just-captured trace");
    Round { wall: start.elapsed(), eval }
}

/// Worst errors of `sampled` vs `exact` across all three measured grids:
/// relative miss-count error (harsh on sparse-miss points) and relative
/// miss-ratio error (the acceptance metric; per-stream lengths come from
/// the exact run's pass metrics).
fn max_errors(sampled: &ReferenceEvaluation, exact: &ReferenceEvaluation) -> (f64, f64) {
    let stream_len = |kind: StreamKind| {
        exact.metrics().passes.iter().find(|p| p.stream == kind).map_or(1, |p| p.addresses).max(1)
            as f64
    };
    let mut worst_rel = 0.0f64;
    let mut worst_ratio = 0.0f64;
    for (kind, got, want) in [
        (StreamKind::Instruction, sampled.imeasured(), exact.imeasured()),
        (StreamKind::Data, sampled.dmeasured(), exact.dmeasured()),
        (StreamKind::Unified, sampled.umeasured(), exact.umeasured()),
    ] {
        let n = stream_len(kind);
        for (config, &exact_misses) in want {
            let diff = (got[config] as f64 - exact_misses as f64).abs();
            worst_rel = worst_rel.max(diff / exact_misses.max(1) as f64);
            worst_ratio = worst_ratio.max(diff / n);
        }
    }
    (worst_rel, worst_ratio)
}

/// Summed single-pass simulation wall and family-addresses of one run.
fn grid_sim(eval: &ReferenceEvaluation) -> (Duration, u64) {
    let m = eval.metrics();
    (m.cpu_sim_time(), m.simulated_addresses())
}

fn main() -> std::io::Result<()> {
    let events = mhe_bench::events();
    let mdes = mhe_vliw::ProcessorKind::P1111.mdes();
    let b = Benchmark::Gcc;
    // One worker thread in both modes: per-access cost is under test, and
    // parallel scheduling noise would blur the per-pass walls.
    let exact_cfg =
        EvalConfig { events, seed: mhe_bench::SEED, threads: 1, ..EvalConfig::default() };
    let sampled_cfg = EvalConfig { sampling: Some(SamplingConfig::default()), ..exact_cfg };

    let dir = std::env::temp_dir().join("mhe_traces");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("sampling_speedup_gcc.mtr");
    let (ic, dc, uc) = spaces();
    let mem = ReferenceEvaluation::build(b.generate(), &mdes, exact_cfg, &ic, &dc, &uc);
    mem.capture_mtr(BufWriter::new(File::create(&path)?))?;

    println!("# Sampled vs exact replay throughput (events = {events})\n");
    // Warm-up round per mode: file cache, allocator, branch predictors.
    let _ = replay_once(b, &mdes, exact_cfg, &path);
    let _ = replay_once(b, &mdes, sampled_cfg, &path);

    let mut full: Option<Round> = None;
    let mut samp: Option<Round> = None;
    for _ in 0..RUNS {
        let r = replay_once(b, &mdes, exact_cfg, &path);
        if full.as_ref().is_none_or(|best| r.wall < best.wall) {
            full = Some(r);
        }
        let r = replay_once(b, &mdes, sampled_cfg, &path);
        if samp.as_ref().is_none_or(|best| r.wall < best.wall) {
            samp = Some(r);
        }
    }
    let full = full.expect("RUNS > 0");
    let samp = samp.expect("RUNS > 0");

    let accesses =
        full.eval.metrics().replay.as_ref().expect("file replay records metrics").accesses;
    let sm = samp.eval.metrics().sampling.expect("sampled replay records sampling metrics");

    // Grid-simulation phase: the cost that scales with grid × trace.
    let (full_sim, full_addrs) = grid_sim(&full.eval);
    let (samp_sim, samp_addrs) = grid_sim(&samp.eval);
    let full_sim_rate = full_addrs as f64 / full_sim.as_secs_f64().max(1e-9);
    let samp_sim_rate = full_addrs as f64 / samp_sim.as_secs_f64().max(1e-9);
    let sim_speedup = samp_sim_rate / full_sim_rate.max(1e-9);

    // End-to-end replay wall, including the shared O(N) streaming costs.
    let full_rate = accesses as f64 / full.wall.as_secs_f64().max(1e-9);
    let samp_rate = accesses as f64 / samp.wall.as_secs_f64().max(1e-9);
    let wall_speedup = samp_rate / full_rate.max(1e-9);

    let (rel_error, ratio_error) = max_errors(&samp.eval, &full.eval);
    let pass = sim_speedup >= GATE_SPEEDUP;

    println!("  trace accesses:            {accesses}");
    println!(
        "  coverage: {} intervals -> {} clusters, {} representative accesses",
        sm.intervals, sm.clusters, sm.representative_accesses
    );
    println!(
        "  grid simulation   exact: {full_sim:>9.3?} ({full_addrs} family addrs)  \
         sampled: {samp_sim:>9.3?} ({samp_addrs})"
    );
    println!("  end-to-end replay exact: {:>9.3?}  sampled: {:>9.3?}", full.wall, samp.wall);
    println!("  end-to-end speedup: {wall_speedup:.2}x (recorded; O(N) streaming costs shared)");
    println!(
        "  max miss-ratio error vs exact: {ratio_error:.6} \
         (miss-count relative: {rel_error:.4} on sparse points; \
         recorded, gated in sampling_accuracy)"
    );
    println!(
        "  grid-simulation speedup: {sim_speedup:.1}x (gate {GATE_SPEEDUP:.0}x): {}",
        if pass { "PASS" } else { "FAIL" }
    );

    let json = format!(
        "{{\n  \"bench\": \"sampling_speedup\",\n  \"benchmark\": \"gcc\",\n  \
         \"events\": {events},\n  \"trace_accesses\": {accesses},\n  \
         \"full\": {{ \"wall_s\": {:.6}, \"accesses_per_s\": {:.0}, \
         \"grid_sim_s\": {:.6}, \"family_addresses\": {full_addrs} }},\n  \
         \"sampled\": {{ \"wall_s\": {:.6}, \"accesses_per_s\": {:.0}, \
         \"grid_sim_s\": {:.6}, \"family_addresses\": {samp_addrs}, \
         \"intervals\": {}, \"clusters\": {}, \"representative_accesses\": {} }},\n  \
         \"grid_sim_speedup\": {sim_speedup:.2},\n  \"wall_speedup\": {wall_speedup:.2},\n  \
         \"max_miss_ratio_error\": {ratio_error:.6},\n  \"max_rel_error\": {rel_error:.6},\n  \
         \"gate\": {{ \"metric\": \"grid_sim_speedup\", \"min\": {GATE_SPEEDUP} }},\n  \
         \"pass\": {pass}\n}}\n",
        full.wall.as_secs_f64(),
        full_rate,
        full_sim.as_secs_f64(),
        samp.wall.as_secs_f64(),
        samp_rate,
        samp_sim.as_secs_f64(),
        sm.intervals,
        sm.clusters,
        sm.representative_accesses,
    );
    std::fs::create_dir_all("results")?;
    let mut out = File::create("results/BENCH_7.json")?;
    out.write_all(json.as_bytes())?;
    println!("\n  results/BENCH_7.json written");

    if !pass {
        eprintln!(
            "[sampling_speedup] FAIL: sampled grid simulation below the {GATE_SPEEDUP}x gate"
        );
        std::process::exit(1);
    }
    Ok(())
}
