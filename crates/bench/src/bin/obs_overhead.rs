//! Asserts that observability probes are close to free.
//!
//! The contract of `mhe-obs` is that an *enabled* probe costs a couple of
//! atomic adds at batch granularity, and a *disabled* probe costs one
//! relaxed load plus a branch. This binary measures the trace-replay
//! workload — decode a captured `.mtr` trace and run the measured cache
//! simulations, the probe-densest path in the workspace — with probes
//! disabled and with probes recording, and fails (exit 1) if recording
//! adds more than the overhead budget. Since a disabled probe does
//! strictly less work than a recording one, the disabled-probe overhead
//! is bounded by the same budget.
//!
//! Method: the two modes alternate for `RUNS` rounds and the minimum
//! wall time of each is compared (minimum, not mean: the minimum is the
//! least-noise estimate of the true cost on a shared machine). A small
//! absolute floor keeps sub-millisecond jitter from failing short runs.
//!
//! Usage: `obs_overhead` — the dynamic window follows `MHE_EVENTS`.

use mhe_cache::CacheConfig;
use mhe_core::evaluator::{EvalConfig, ReferenceEvaluation};
use mhe_vliw::Mdes;
use mhe_workload::Benchmark;
use std::fs::File;
use std::io::BufWriter;
use std::path::Path;
use std::time::{Duration, Instant};

/// Alternating measurement rounds per mode.
const RUNS: usize = 5;
/// Relative overhead budget for recording probes.
const BUDGET: f64 = 0.02;
/// Absolute slack absorbing scheduler jitter on short runs.
const FLOOR: Duration = Duration::from_millis(5);

fn spaces() -> (Vec<CacheConfig>, Vec<CacheConfig>, Vec<CacheConfig>) {
    let l1 = vec![mhe_bench::l1_small(), mhe_bench::l1_large()];
    (l1.clone(), l1, vec![mhe_bench::l2_small(), mhe_bench::l2_large()])
}

fn replay_once(b: Benchmark, mdes: &Mdes, cfg: EvalConfig, path: &Path) -> Duration {
    let (ic, dc, uc) = spaces();
    let start = Instant::now();
    let eval = ReferenceEvaluation::replay_file(b.generate(), mdes, cfg, path, &ic, &dc, &uc)
        .expect("replay of a just-captured trace");
    let wall = start.elapsed();
    assert!(eval.metrics().replay.is_some(), "file replay records metrics");
    wall
}

fn main() -> std::io::Result<()> {
    let events = mhe_bench::events();
    let mdes = mhe_vliw::ProcessorKind::P1111.mdes();
    // One thread: the probe cost per access is what is under test, and
    // parallel scheduling noise would drown it.
    let cfg = EvalConfig { events, seed: mhe_bench::SEED, threads: 1, ..EvalConfig::default() };
    let b = Benchmark::Gcc;

    let dir = std::env::temp_dir().join("mhe_traces");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("obs_overhead_085_gcc.mtr");
    let (ic, dc, uc) = spaces();
    let mem = ReferenceEvaluation::build(b.generate(), &mdes, cfg, &ic, &dc, &uc);
    mem.capture_mtr(BufWriter::new(File::create(&path)?))?;

    println!("# Observability probe overhead (trace replay, events = {events})\n");
    // Warm-up: touch the file cache and the allocator before timing.
    let _ = replay_once(b, &mdes, cfg, &path);

    let mut off = Duration::MAX;
    let mut on = Duration::MAX;
    for _ in 0..RUNS {
        mhe_obs::set_level(mhe_obs::ObsLevel::Off);
        off = off.min(replay_once(b, &mdes, cfg, &path));
        mhe_obs::set_level(mhe_obs::ObsLevel::Json);
        on = on.min(replay_once(b, &mdes, cfg, &path));
        mhe_obs::reset();
    }
    mhe_obs::set_level(mhe_obs::ObsLevel::Off);

    let overhead = on.as_secs_f64() / off.as_secs_f64().max(1e-9) - 1.0;
    let budget = Duration::from_secs_f64(off.as_secs_f64() * BUDGET) + FLOOR;
    let pass = on <= off + budget;
    println!("  probes off (min of {RUNS}): {off:>9.3?}");
    println!("  probes on  (min of {RUNS}): {on:>9.3?}");
    println!(
        "  overhead: {:.2}% (budget {:.0}% + {FLOOR:?} floor): {}",
        overhead * 100.0,
        BUDGET * 100.0,
        if pass { "PASS" } else { "FAIL" }
    );
    if !pass {
        eprintln!("[obs_overhead] FAIL: recording probes exceed the overhead budget");
        std::process::exit(1);
    }
    Ok(())
}
