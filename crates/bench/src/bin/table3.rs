//! Table 3: text dilation for all benchmarks × processors.
//!
//! Paper values range from 1.26–1.40 (2111) up to 2.47–3.25 (6332). No
//! simulation: ten compilations per processor.

use mhe_vliw::compile::Compiled;
use mhe_vliw::ProcessorKind;
use mhe_workload::{Benchmark, BlockFrequencies};

fn main() {
    println!("# Table 3: Text dilation for all benchmarks\n");
    println!(
        "{:<14} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "Benchmark", "1111", "2111", "3221", "4221", "6332"
    );
    for b in Benchmark::ALL {
        let program = b.generate();
        let freq = BlockFrequencies::profile(&program, mhe_bench::SEED, 200_000);
        let reference = Compiled::build(&program, &ProcessorKind::P1111.mdes(), Some(&freq));
        print!("{:<14}", b.name());
        for kind in ProcessorKind::ALL {
            let target = Compiled::build(&program, &kind.mdes(), Some(&freq));
            let d = target.text_words() as f64 / reference.text_words() as f64;
            print!(" {:>6.2}", d);
        }
        println!();
    }
    println!(
        "\npaper bands: 2111 in 1.26-1.40, 3221 in 1.66-2.00, 4221 in 1.80-2.51, 6332 in 2.47-3.25"
    );
}
