//! Point-in-time performance snapshot with a trajectory gate.
//!
//! Three throughput numbers the workspace's performance story rests on,
//! measured in one short run and recorded machine-readably in
//! `results/BENCH_8.json`:
//!
//! 1. **Single-pass simulation** — accesses/second through
//!    [`SinglePassSim`] over the epic reference instruction trace (the
//!    paper's "simulate every associativity in one pass" engine);
//! 2. **`.mtr` decode** — MB/second through [`TraceReader`] over an
//!    in-memory captured trace (the replay path's streaming cost);
//! 3. **Daemon query latency** — one [`EvalService`] frontier request
//!    cold (session build + walk, exactly an in-process batch run) vs
//!    warm (session and metric cache hot). The warm/cold ratio is the
//!    whole point of the daemon; the **≥ [`GATE_WARM_SPEEDUP`]×** gate
//!    enforces it.
//!
//! A fourth section measures the **distributed walk**: the same plan
//! evaluated serially vs through a fleet of 1/2/4 in-process workers,
//! with the merged frontier required byte-identical to the serial walk
//! at every worker count. The serial-vs-4-worker speedup lands in
//! `results/BENCH_9.json`; its **≥ [`GATE_FLEET_SPEEDUP`]×** gate is
//! enforced only on machines with at least 4 cores (on a 1-core CI box a
//! fleet cannot beat a serial walk — the identity and trajectory gates
//! still apply there).
//!
//! A fifth section measures **survivability costs** into
//! `results/BENCH_10.json`: the warm-query overhead of running the
//! session TTL/LRU eviction pass on every request (gated at
//! **≤ [`GATE_EVICTION_OVERHEAD`]×** the unbounded warm query), and the
//! latency from cancelling an in-flight walk to the sweep actually
//! stopping at its next task boundary (gated to abort in well under the
//! walk's full runtime — a cancel that saves no work is not a cancel).
//!
//! Besides the warm-speedup gate, conservative absolute floors catch
//! order-of-magnitude collapses, and a **trajectory check** compares
//! against the previous `results/BENCH_8.json` (when one exists): any
//! throughput that fell below `prior / TRAJECTORY_FACTOR` fails the run.
//! The floors are deliberately loose — this is a tripwire against large
//! regressions on a shared machine, not a microbenchmark.
//!
//! Usage: `bench_snapshot` — the dynamic window follows `MHE_EVENTS`.

use mhe_cache::SinglePassSim;
use mhe_core::evaluator::EvalConfig;
use mhe_core::{CancelToken, MheError};
use mhe_spacewalk::fleet::{
    evaluate_item, run_worker, work_plan, Coordinator, FleetConfig, FleetJob, PreparedWorker,
    WorkerOptions,
};
use mhe_spacewalk::service::proto::{FrontierRequest, Request, Response};
use mhe_spacewalk::spec::Spec;
use mhe_spacewalk::{
    render_frontier, report_from, walker, EvalService, EvaluationCache, ServiceConfig,
    ServiceLimits,
};
use mhe_trace::codec::write_mtr;
use mhe_trace::{StreamKind, TraceGenerator, TraceReader};
use std::fs::File;
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Warm daemon repeat must beat the cold (build + walk) query by this.
const GATE_WARM_SPEEDUP: f64 = 10.0;
/// A 4-worker fleet must beat the serial walk by this — enforced only
/// when the machine actually has ≥ 4 cores to parallelize over (the
/// byte-identity of the merged frontier is enforced unconditionally).
const GATE_FLEET_SPEEDUP: f64 = 2.0;
/// Absolute floor on single-pass simulation throughput (accesses/s).
const GATE_SINGLE_PASS: f64 = 1.0e6;
/// Absolute floor on `.mtr` decode throughput (MB/s).
const GATE_DECODE_MB: f64 = 20.0;
/// Trajectory: each throughput must stay above `prior / this`.
const TRAJECTORY_FACTOR: f64 = 5.0;
/// The warm repeat on a TTL/LRU-bounded service (eviction pass on every
/// request) must stay within this factor of the unbounded warm query.
const GATE_EVICTION_OVERHEAD: f64 = 3.0;
/// A cancel fired right after a walk starts must abort the sweep in
/// under this fraction of the full walk's runtime — otherwise the
/// "cancellation" saved no work.
const GATE_CANCEL_FRACTION: f64 = 0.5;
/// Measurement rounds (minimum wall kept — least-noise estimate).
const RUNS: usize = 3;

/// The snapshot's walkable spec: small enough that the cold query stays
/// in CI budget, rich enough that the walk dominates the warm repeat.
fn spec_text(events: usize) -> String {
    format!(
        "[processors]\nkinds = 1111 3221\n\n\
         [icache]\nsizes_kb = 1 4\nassocs = 1 2\nline_bytes = 32\nports = 1\n\n\
         [dcache]\nsizes_kb = 1 4\nassocs = 1\nline_bytes = 32\nports = 1\n\n\
         [ucache]\nsizes_kb = 16 64\nassocs = 2\nline_bytes = 64\nports = 1\n\n\
         [eval]\nbenchmark = unepic\nevents = {events}\nl1_miss = 10\nl2_miss = 50\n"
    )
}

/// The distributed-walk spec: four processors, so the plan carries four
/// heavyweight per-processor cycle simulations a fleet can actually
/// spread over workers (the cache estimates are cheap by comparison).
fn fleet_spec_text(events: usize) -> String {
    format!(
        "[processors]\nkinds = 1111 2111 3221 4221\n\n\
         [icache]\nsizes_kb = 1 2 4 8\nassocs = 1 2\nline_bytes = 32\nports = 1\n\n\
         [dcache]\nsizes_kb = 1 4\nassocs = 1\nline_bytes = 32\nports = 1\n\n\
         [ucache]\nsizes_kb = 16 64\nassocs = 2\nline_bytes = 64\nports = 1\n\n\
         [eval]\nbenchmark = unepic\nevents = {events}\nl1_miss = 10\nl2_miss = 50\n"
    )
}

/// Minimum wall over [`RUNS`] invocations of `f`.
fn min_wall(mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..RUNS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

/// Extracts `"key": <number>` from a prior snapshot without a JSON
/// dependency (the workspace is offline; the files are our own output).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One trajectory comparison: `new` must not fall below `prior / factor`.
fn trajectory_ok(label: &str, new: f64, prior: Option<f64>) -> bool {
    match prior {
        Some(p) if new < p / TRAJECTORY_FACTOR => {
            eprintln!(
                "[bench_snapshot] TRAJECTORY FAIL: {label} fell to {new:.0} \
                 (prior {p:.0}, floor {:.0})",
                p / TRAJECTORY_FACTOR
            );
            false
        }
        Some(p) => {
            println!("  trajectory {label}: {new:.0} vs prior {p:.0} (ok)");
            true
        }
        None => true,
    }
}

/// Trajectory for latencies (lower is better): `new` must not climb
/// above `prior * TRAJECTORY_FACTOR`.
fn trajectory_latency_ok(label: &str, new: f64, prior: Option<f64>) -> bool {
    match prior {
        Some(p) if new > p * TRAJECTORY_FACTOR => {
            eprintln!(
                "[bench_snapshot] TRAJECTORY FAIL: {label} climbed to {new:.2} \
                 (prior {p:.2}, ceiling {:.2})",
                p * TRAJECTORY_FACTOR
            );
            false
        }
        Some(p) => {
            println!("  trajectory {label}: {new:.2} vs prior {p:.2} (ok)");
            true
        }
        None => true,
    }
}

fn main() -> std::io::Result<()> {
    let events = mhe_bench::events();
    let b = mhe_workload::Benchmark::Epic;
    let program = b.generate();
    let mdes = mhe_vliw::ProcessorKind::P1111.mdes();
    let compiled = mhe_bench::reference_compilation(&program, &mdes);

    println!("# Performance snapshot (events = {events})\n");

    // --- 1. single-pass simulation throughput ---------------------------
    let addrs: Vec<u64> = TraceGenerator::new(&program, &compiled, mhe_bench::SEED)
        .stream(StreamKind::Instruction)
        .take(events)
        .map(|a| a.addr)
        .collect();
    let wall = min_wall(|| {
        let mut sim = SinglePassSim::new(8, &[32, 256], 4);
        sim.run(addrs.iter().copied());
        std::hint::black_box(sim.misses(32, 1));
    });
    let single_pass_rate = addrs.len() as f64 / wall.as_secs_f64().max(1e-9);
    println!(
        "  single-pass sim:  {} accesses in {wall:.3?}  ({single_pass_rate:.0}/s)",
        addrs.len()
    );

    // --- 2. .mtr decode throughput ---------------------------------------
    let accesses: Vec<mhe_trace::Access> =
        TraceGenerator::new(&program, &compiled, mhe_bench::SEED)
            .with_event_limit(events)
            .collect();
    let mut encoded = Vec::new();
    write_mtr(&mut encoded, accesses.iter().copied())?;
    let mut decoded = 0usize;
    let wall = min_wall(|| {
        let reader = TraceReader::new(std::io::Cursor::new(&encoded[..]))
            .expect("decode of a just-encoded trace");
        decoded = reader.count();
    });
    assert_eq!(decoded, accesses.len(), "decode must round-trip every access");
    let decode_mb_rate = encoded.len() as f64 / 1.0e6 / wall.as_secs_f64().max(1e-9);
    println!(
        "  .mtr decode:      {} bytes ({} accesses) in {wall:.3?}  ({decode_mb_rate:.0} MB/s)",
        encoded.len(),
        accesses.len()
    );

    // --- 3. daemon query latency: cold vs warm ---------------------------
    // The cold query is byte-for-byte an in-process batch run (session
    // build — the only simulation — plus the full walk); the warm repeat
    // hits the session and the metric cache. Served through the same
    // `EvalService::respond` the socket server calls.
    let walk_events = events.min(60_000);
    let request = || {
        Request::Frontier(FrontierRequest {
            spec_text: spec_text(walk_events),
            heuristic: true,
            sampling: None,
            policies: None,
        })
    };
    let service = EvalService::new(ServiceLimits { max_inflight: 1, max_queued: 4 });
    let start = Instant::now();
    let cold_resp = service.respond(request());
    let cold = start.elapsed();
    assert!(matches!(cold_resp, Response::Frontier(_)), "cold query must serve a frontier");
    let warm = min_wall(|| {
        let resp = service.respond(request());
        assert!(matches!(resp, Response::Frontier(_)), "warm query must serve a frontier");
    });
    let warm_speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
    println!(
        "  daemon query:     cold {cold:.3?}  warm {warm:.3?}  ({warm_speedup:.1}x, \
         gate {GATE_WARM_SPEEDUP:.0}x)"
    );

    // --- gates ------------------------------------------------------------
    let prior = std::fs::read_to_string("results/BENCH_8.json").ok();
    let prior_num = |key: &str| prior.as_deref().and_then(|t| json_number(t, key));
    let mut pass = true;
    pass &= trajectory_ok(
        "single_pass_accesses_per_s",
        single_pass_rate,
        prior_num("single_pass_accesses_per_s"),
    );
    pass &= trajectory_ok("mtr_decode_mb_per_s", decode_mb_rate, prior_num("mtr_decode_mb_per_s"));
    if single_pass_rate < GATE_SINGLE_PASS {
        eprintln!("[bench_snapshot] FAIL: single-pass {single_pass_rate:.0}/s below {GATE_SINGLE_PASS:.0}");
        pass = false;
    }
    if decode_mb_rate < GATE_DECODE_MB {
        eprintln!(
            "[bench_snapshot] FAIL: decode {decode_mb_rate:.0} MB/s below {GATE_DECODE_MB:.0}"
        );
        pass = false;
    }
    if warm_speedup < GATE_WARM_SPEEDUP {
        eprintln!(
            "[bench_snapshot] FAIL: warm daemon repeat only {warm_speedup:.1}x over cold \
             (gate {GATE_WARM_SPEEDUP:.0}x)"
        );
        pass = false;
    }

    let json = format!(
        "{{\n  \"bench\": \"bench_snapshot\",\n  \"pr\": 8,\n  \"events\": {events},\n  \
         \"single_pass_accesses_per_s\": {single_pass_rate:.0},\n  \
         \"mtr_decode_mb_per_s\": {decode_mb_rate:.2},\n  \
         \"daemon_cold_ms\": {:.3},\n  \"daemon_warm_ms\": {:.3},\n  \
         \"daemon_warm_speedup\": {warm_speedup:.2},\n  \
         \"gates\": {{ \"warm_speedup_min\": {GATE_WARM_SPEEDUP}, \
         \"single_pass_min\": {GATE_SINGLE_PASS:.0}, \"decode_mb_min\": {GATE_DECODE_MB}, \
         \"trajectory_factor\": {TRAJECTORY_FACTOR} }},\n  \"pass\": {pass}\n}}\n",
        cold.as_secs_f64() * 1e3,
        warm.as_secs_f64() * 1e3,
    );
    std::fs::create_dir_all("results")?;
    let mut out = File::create("results/BENCH_8.json")?;
    out.write_all(json.as_bytes())?;
    println!("\n  results/BENCH_8.json written");

    // --- 4. distributed walk: fleet vs single process --------------------
    // Everything runs single-threaded inside each worker, so the speedup
    // measures distribution, not intra-worker threading; workers share
    // one prepared evaluation because the reference build is the same on
    // every node and is not what the fleet distributes.
    println!();
    // A bigger window than the daemon section: the per-processor cycle
    // simulations must dwarf the fleet's fixed protocol cost, or the
    // speedup would measure framing overhead instead of distribution.
    let fleet_events = (events * 25).min(5_000_000);
    let fleet_text = fleet_spec_text(fleet_events);
    let fleet_spec = Spec::parse(&fleet_text).expect("fleet spec parses");
    let eval = Arc::new(walker::prepare_evaluation(
        fleet_spec.benchmark.generate(),
        &mhe_vliw::ProcessorKind::P1111.mdes(),
        EvalConfig { events: fleet_spec.events, threads: 1, ..EvalConfig::default() },
        &fleet_spec.space,
    ));

    let serial_start = Instant::now();
    let serial_db = EvaluationCache::new();
    for item in work_plan(&eval, &fleet_spec.space) {
        let value = evaluate_item(&eval, &item).expect("serial plan item");
        serial_db.insert(item.key.clone(), value);
    }
    let serial_frontier =
        walker::walk_system_with(&eval, &fleet_spec.space, fleet_spec.penalties, &serial_db, None)
            .expect("serial walk");
    let serial_wall = serial_start.elapsed();
    let want = render_frontier(&report_from(&eval, &serial_frontier, &serial_db));
    println!("  serial walk:      full plan + frontier in {serial_wall:.3?}");

    let mut fleet_ms = Vec::new();
    let mut identical = true;
    for workers in [1usize, 2, 4] {
        let db = Arc::new(EvaluationCache::new());
        let job = FleetJob { spec_text: fleet_text.clone(), sampling: None, policies: None };
        let coordinator = Coordinator::bind(
            "127.0.0.1:0",
            job,
            FleetConfig { shard_count: 16, ..FleetConfig::default() },
            Arc::clone(&db),
        )
        .expect("bind fleet coordinator");
        let addr = coordinator.local_addr().expect("fleet addr").to_string();
        let start = Instant::now();
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let addr = addr.clone();
                let opts = WorkerOptions {
                    threads: Some(1),
                    prepared: Some(PreparedWorker {
                        eval: Arc::clone(&eval),
                        space: fleet_spec.space.clone(),
                    }),
                    ..WorkerOptions::default()
                };
                std::thread::spawn(move || run_worker(&addr, opts))
            })
            .collect();
        coordinator.run(None).expect("fleet sweep");
        for h in handles {
            h.join().expect("worker thread").expect("fleet worker");
        }
        let frontier =
            walker::walk_system_with(&eval, &fleet_spec.space, fleet_spec.penalties, &db, None)
                .expect("post-fleet walk");
        let wall = start.elapsed();
        if render_frontier(&report_from(&eval, &frontier, &db)) != want {
            identical = false;
            eprintln!("[bench_snapshot] FAIL: {workers}-worker fleet frontier differs from serial");
        }
        println!("  fleet walk:       {workers} worker(s) in {wall:.3?}");
        fleet_ms.push(wall.as_secs_f64() * 1e3);
    }
    let serial_ms = serial_wall.as_secs_f64() * 1e3;
    let fleet_speedup_4 = serial_ms / fleet_ms[2].max(1e-9);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "  fleet speedup:    serial {serial_ms:.0} ms vs 4 workers {:.0} ms = \
         {fleet_speedup_4:.2}x on {cores} core(s) (gate {GATE_FLEET_SPEEDUP:.0}x when cores >= 4)",
        fleet_ms[2]
    );

    let prior9 = std::fs::read_to_string("results/BENCH_9.json").ok();
    let prior9_num = |key: &str| prior9.as_deref().and_then(|t| json_number(t, key));
    let mut pass9 = identical;
    pass9 &= trajectory_ok("fleet_speedup_4", fleet_speedup_4, prior9_num("fleet_speedup_4"));
    let gate_enforced = cores >= 4;
    if gate_enforced && fleet_speedup_4 < GATE_FLEET_SPEEDUP {
        eprintln!(
            "[bench_snapshot] FAIL: 4-worker fleet only {fleet_speedup_4:.2}x over serial \
             (gate {GATE_FLEET_SPEEDUP:.0}x)"
        );
        pass9 = false;
    }

    let json9 = format!(
        "{{\n  \"bench\": \"bench_snapshot\",\n  \"pr\": 9,\n  \"events\": {fleet_events},\n  \
         \"cores\": {cores},\n  \"walk_serial_ms\": {serial_ms:.3},\n  \
         \"fleet_1_ms\": {:.3},\n  \"fleet_2_ms\": {:.3},\n  \"fleet_4_ms\": {:.3},\n  \
         \"fleet_speedup_4\": {fleet_speedup_4:.3},\n  \"frontier_identical\": {identical},\n  \
         \"gates\": {{ \"fleet_speedup_min\": {GATE_FLEET_SPEEDUP}, \
         \"speedup_gate_enforced\": {gate_enforced}, \
         \"trajectory_factor\": {TRAJECTORY_FACTOR} }},\n  \"pass\": {pass9}\n}}\n",
        fleet_ms[0], fleet_ms[1], fleet_ms[2],
    );
    let mut out9 = File::create("results/BENCH_9.json")?;
    out9.write_all(json9.as_bytes())?;
    println!("\n  results/BENCH_9.json written");

    // --- 5. survivability: eviction overhead + cancellation latency ------
    println!();
    // 5a. A TTL/LRU-bounded service runs its eviction pass on every
    // request; the warm repeat must stay within GATE_EVICTION_OVERHEAD
    // of the unbounded warm query measured in section 3.
    let bounded = EvalService::with_config(ServiceConfig {
        limits: ServiceLimits { max_inflight: 1, max_queued: 4 },
        session_ttl: Some(Duration::from_secs(3600)),
        max_sessions: Some(8),
        persist_dir: None,
    });
    let resp = bounded.respond(request());
    assert!(matches!(resp, Response::Frontier(_)), "bounded cold query must serve a frontier");
    let warm_bounded = min_wall(|| {
        let resp = bounded.respond(request());
        assert!(matches!(resp, Response::Frontier(_)), "bounded warm query must serve a frontier");
    });
    let eviction_overhead = warm_bounded.as_secs_f64() / warm.as_secs_f64().max(1e-9);
    println!(
        "  bounded daemon:   warm {warm_bounded:.3?} vs unbounded {warm:.3?}  \
         ({eviction_overhead:.2}x, gate {GATE_EVICTION_OVERHEAD:.0}x)"
    );

    // 5b. Cancelling the fleet-sized walk shortly after it starts must
    // abort at a task boundary, in a small fraction of the walk's full
    // runtime (~serial_ms); the latency is the cancel-to-stop gap.
    let token = CancelToken::new();
    let cancel_db = EvaluationCache::new();
    let (cancelled, cancel_latency) = std::thread::scope(|scope| {
        let walk_token = token.clone();
        let walk = scope.spawn(|| {
            walker::with_walk_cancel(walk_token, || {
                walker::walk_system_with(
                    &eval,
                    &fleet_spec.space,
                    fleet_spec.penalties,
                    &cancel_db,
                    None,
                )
            })
        });
        std::thread::sleep(Duration::from_millis(30));
        let fired = Instant::now();
        token.cancel();
        let outcome = walk.join().expect("cancelled walk thread");
        (matches!(outcome, Err(MheError::Cancelled)), fired.elapsed())
    });
    let cancel_ms = cancel_latency.as_secs_f64() * 1e3;
    println!(
        "  cancellation:     stop {cancel_ms:.1} ms after cancel (full walk {serial_ms:.0} ms, \
         gate {:.0}%)",
        GATE_CANCEL_FRACTION * 100.0
    );

    let prior10 = std::fs::read_to_string("results/BENCH_10.json").ok();
    let prior10_num = |key: &str| prior10.as_deref().and_then(|t| json_number(t, key));
    let mut pass10 = true;
    if !cancelled {
        eprintln!("[bench_snapshot] FAIL: the walk ran to completion despite the cancel");
        pass10 = false;
    }
    if eviction_overhead > GATE_EVICTION_OVERHEAD {
        eprintln!(
            "[bench_snapshot] FAIL: bounded warm repeat {eviction_overhead:.2}x over unbounded \
             (gate {GATE_EVICTION_OVERHEAD:.0}x)"
        );
        pass10 = false;
    }
    if cancel_ms > serial_ms * GATE_CANCEL_FRACTION {
        eprintln!(
            "[bench_snapshot] FAIL: cancel took {cancel_ms:.0} ms of a {serial_ms:.0} ms walk \
             (gate {:.0}%)",
            GATE_CANCEL_FRACTION * 100.0
        );
        pass10 = false;
    }
    pass10 &= trajectory_latency_ok(
        "daemon_warm_bounded_ms",
        warm_bounded.as_secs_f64() * 1e3,
        prior10_num("daemon_warm_bounded_ms"),
    );

    let json10 = format!(
        "{{\n  \"bench\": \"bench_snapshot\",\n  \"pr\": 10,\n  \"events\": {walk_events},\n  \
         \"cancel_events\": {fleet_events},\n  \
         \"daemon_warm_unbounded_ms\": {:.3},\n  \"daemon_warm_bounded_ms\": {:.3},\n  \
         \"eviction_overhead\": {eviction_overhead:.3},\n  \
         \"cancel_latency_ms\": {cancel_ms:.3},\n  \"walk_full_ms\": {serial_ms:.3},\n  \
         \"cancelled\": {cancelled},\n  \
         \"gates\": {{ \"eviction_overhead_max\": {GATE_EVICTION_OVERHEAD}, \
         \"cancel_fraction_max\": {GATE_CANCEL_FRACTION}, \
         \"trajectory_factor\": {TRAJECTORY_FACTOR} }},\n  \"pass\": {pass10}\n}}\n",
        warm.as_secs_f64() * 1e3,
        warm_bounded.as_secs_f64() * 1e3,
    );
    let mut out10 = File::create("results/BENCH_10.json")?;
    out10.write_all(json10.as_bytes())?;
    println!("\n  results/BENCH_10.json written");

    if !pass || !pass9 || !pass10 {
        std::process::exit(1);
    }
    Ok(())
}
