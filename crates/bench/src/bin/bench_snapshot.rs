//! Point-in-time performance snapshot with a trajectory gate.
//!
//! Three throughput numbers the workspace's performance story rests on,
//! measured in one short run and recorded machine-readably in
//! `results/BENCH_8.json`:
//!
//! 1. **Single-pass simulation** — accesses/second through
//!    [`SinglePassSim`] over the epic reference instruction trace (the
//!    paper's "simulate every associativity in one pass" engine);
//! 2. **`.mtr` decode** — MB/second through [`TraceReader`] over an
//!    in-memory captured trace (the replay path's streaming cost);
//! 3. **Daemon query latency** — one [`EvalService`] frontier request
//!    cold (session build + walk, exactly an in-process batch run) vs
//!    warm (session and metric cache hot). The warm/cold ratio is the
//!    whole point of the daemon; the **≥ [`GATE_WARM_SPEEDUP`]×** gate
//!    enforces it.
//!
//! Besides the warm-speedup gate, conservative absolute floors catch
//! order-of-magnitude collapses, and a **trajectory check** compares
//! against the previous `results/BENCH_8.json` (when one exists): any
//! throughput that fell below `prior / TRAJECTORY_FACTOR` fails the run.
//! The floors are deliberately loose — this is a tripwire against large
//! regressions on a shared machine, not a microbenchmark.
//!
//! Usage: `bench_snapshot` — the dynamic window follows `MHE_EVENTS`.

use mhe_cache::SinglePassSim;
use mhe_spacewalk::service::proto::{FrontierRequest, Request, Response};
use mhe_spacewalk::{EvalService, ServiceLimits};
use mhe_trace::codec::write_mtr;
use mhe_trace::{StreamKind, TraceGenerator, TraceReader};
use std::fs::File;
use std::io::Write;
use std::time::{Duration, Instant};

/// Warm daemon repeat must beat the cold (build + walk) query by this.
const GATE_WARM_SPEEDUP: f64 = 10.0;
/// Absolute floor on single-pass simulation throughput (accesses/s).
const GATE_SINGLE_PASS: f64 = 1.0e6;
/// Absolute floor on `.mtr` decode throughput (MB/s).
const GATE_DECODE_MB: f64 = 20.0;
/// Trajectory: each throughput must stay above `prior / this`.
const TRAJECTORY_FACTOR: f64 = 5.0;
/// Measurement rounds (minimum wall kept — least-noise estimate).
const RUNS: usize = 3;

/// The snapshot's walkable spec: small enough that the cold query stays
/// in CI budget, rich enough that the walk dominates the warm repeat.
fn spec_text(events: usize) -> String {
    format!(
        "[processors]\nkinds = 1111 3221\n\n\
         [icache]\nsizes_kb = 1 4\nassocs = 1 2\nline_bytes = 32\nports = 1\n\n\
         [dcache]\nsizes_kb = 1 4\nassocs = 1\nline_bytes = 32\nports = 1\n\n\
         [ucache]\nsizes_kb = 16 64\nassocs = 2\nline_bytes = 64\nports = 1\n\n\
         [eval]\nbenchmark = unepic\nevents = {events}\nl1_miss = 10\nl2_miss = 50\n"
    )
}

/// Minimum wall over [`RUNS`] invocations of `f`.
fn min_wall(mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..RUNS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

/// Extracts `"key": <number>` from a prior snapshot without a JSON
/// dependency (the workspace is offline; the files are our own output).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One trajectory comparison: `new` must not fall below `prior / factor`.
fn trajectory_ok(label: &str, new: f64, prior: Option<f64>) -> bool {
    match prior {
        Some(p) if new < p / TRAJECTORY_FACTOR => {
            eprintln!(
                "[bench_snapshot] TRAJECTORY FAIL: {label} fell to {new:.0} \
                 (prior {p:.0}, floor {:.0})",
                p / TRAJECTORY_FACTOR
            );
            false
        }
        Some(p) => {
            println!("  trajectory {label}: {new:.0} vs prior {p:.0} (ok)");
            true
        }
        None => true,
    }
}

fn main() -> std::io::Result<()> {
    let events = mhe_bench::events();
    let b = mhe_workload::Benchmark::Epic;
    let program = b.generate();
    let mdes = mhe_vliw::ProcessorKind::P1111.mdes();
    let compiled = mhe_bench::reference_compilation(&program, &mdes);

    println!("# Performance snapshot (events = {events})\n");

    // --- 1. single-pass simulation throughput ---------------------------
    let addrs: Vec<u64> = TraceGenerator::new(&program, &compiled, mhe_bench::SEED)
        .stream(StreamKind::Instruction)
        .take(events)
        .map(|a| a.addr)
        .collect();
    let wall = min_wall(|| {
        let mut sim = SinglePassSim::new(8, &[32, 256], 4);
        sim.run(addrs.iter().copied());
        std::hint::black_box(sim.misses(32, 1));
    });
    let single_pass_rate = addrs.len() as f64 / wall.as_secs_f64().max(1e-9);
    println!(
        "  single-pass sim:  {} accesses in {wall:.3?}  ({single_pass_rate:.0}/s)",
        addrs.len()
    );

    // --- 2. .mtr decode throughput ---------------------------------------
    let accesses: Vec<mhe_trace::Access> =
        TraceGenerator::new(&program, &compiled, mhe_bench::SEED)
            .with_event_limit(events)
            .collect();
    let mut encoded = Vec::new();
    write_mtr(&mut encoded, accesses.iter().copied())?;
    let mut decoded = 0usize;
    let wall = min_wall(|| {
        let reader = TraceReader::new(std::io::Cursor::new(&encoded[..]))
            .expect("decode of a just-encoded trace");
        decoded = reader.count();
    });
    assert_eq!(decoded, accesses.len(), "decode must round-trip every access");
    let decode_mb_rate = encoded.len() as f64 / 1.0e6 / wall.as_secs_f64().max(1e-9);
    println!(
        "  .mtr decode:      {} bytes ({} accesses) in {wall:.3?}  ({decode_mb_rate:.0} MB/s)",
        encoded.len(),
        accesses.len()
    );

    // --- 3. daemon query latency: cold vs warm ---------------------------
    // The cold query is byte-for-byte an in-process batch run (session
    // build — the only simulation — plus the full walk); the warm repeat
    // hits the session and the metric cache. Served through the same
    // `EvalService::respond` the socket server calls.
    let walk_events = events.min(60_000);
    let request = || {
        Request::Frontier(FrontierRequest {
            spec_text: spec_text(walk_events),
            heuristic: true,
            sampling: None,
            policies: None,
        })
    };
    let service = EvalService::new(ServiceLimits { max_inflight: 1, max_queued: 4 });
    let start = Instant::now();
    let cold_resp = service.respond(request());
    let cold = start.elapsed();
    assert!(matches!(cold_resp, Response::Frontier(_)), "cold query must serve a frontier");
    let warm = min_wall(|| {
        let resp = service.respond(request());
        assert!(matches!(resp, Response::Frontier(_)), "warm query must serve a frontier");
    });
    let warm_speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
    println!(
        "  daemon query:     cold {cold:.3?}  warm {warm:.3?}  ({warm_speedup:.1}x, \
         gate {GATE_WARM_SPEEDUP:.0}x)"
    );

    // --- gates ------------------------------------------------------------
    let prior = std::fs::read_to_string("results/BENCH_8.json").ok();
    let prior_num = |key: &str| prior.as_deref().and_then(|t| json_number(t, key));
    let mut pass = true;
    pass &= trajectory_ok(
        "single_pass_accesses_per_s",
        single_pass_rate,
        prior_num("single_pass_accesses_per_s"),
    );
    pass &= trajectory_ok("mtr_decode_mb_per_s", decode_mb_rate, prior_num("mtr_decode_mb_per_s"));
    if single_pass_rate < GATE_SINGLE_PASS {
        eprintln!("[bench_snapshot] FAIL: single-pass {single_pass_rate:.0}/s below {GATE_SINGLE_PASS:.0}");
        pass = false;
    }
    if decode_mb_rate < GATE_DECODE_MB {
        eprintln!(
            "[bench_snapshot] FAIL: decode {decode_mb_rate:.0} MB/s below {GATE_DECODE_MB:.0}"
        );
        pass = false;
    }
    if warm_speedup < GATE_WARM_SPEEDUP {
        eprintln!(
            "[bench_snapshot] FAIL: warm daemon repeat only {warm_speedup:.1}x over cold \
             (gate {GATE_WARM_SPEEDUP:.0}x)"
        );
        pass = false;
    }

    let json = format!(
        "{{\n  \"bench\": \"bench_snapshot\",\n  \"pr\": 8,\n  \"events\": {events},\n  \
         \"single_pass_accesses_per_s\": {single_pass_rate:.0},\n  \
         \"mtr_decode_mb_per_s\": {decode_mb_rate:.2},\n  \
         \"daemon_cold_ms\": {:.3},\n  \"daemon_warm_ms\": {:.3},\n  \
         \"daemon_warm_speedup\": {warm_speedup:.2},\n  \
         \"gates\": {{ \"warm_speedup_min\": {GATE_WARM_SPEEDUP}, \
         \"single_pass_min\": {GATE_SINGLE_PASS:.0}, \"decode_mb_min\": {GATE_DECODE_MB}, \
         \"trajectory_factor\": {TRAJECTORY_FACTOR} }},\n  \"pass\": {pass}\n}}\n",
        cold.as_secs_f64() * 1e3,
        warm.as_secs_f64() * 1e3,
    );
    std::fs::create_dir_all("results")?;
    let mut out = File::create("results/BENCH_8.json")?;
    out.write_all(json.as_bytes())?;
    println!("\n  results/BENCH_8.json written");

    if !pass {
        std::process::exit(1);
    }
    Ok(())
}
