//! Sensitivity: robustness of the headline results to the execution seed
//! (i.e. to the program's input data set).
//!
//! The paper fixes one data set per benchmark; this experiment checks that
//! our reproduced quantities — text dilation (input-independent by
//! construction) and the estimate-vs-actual tracking — are stable across
//! inputs, so none of the conclusions hinge on a lucky seed.

use mhe_bench::{l1_small, simulate_caches};
use mhe_core::evaluator::{EvalConfig, ReferenceEvaluation};
use mhe_trace::StreamKind;
use mhe_vliw::ProcessorKind;
use mhe_workload::Benchmark;

fn main() {
    let b = Benchmark::Ghostscript;
    let target = ProcessorKind::P3221;
    let icache = l1_small();
    let events = 80_000;
    let seeds = [0xC0FF_EE01u64, 1, 2, 3, 4];

    println!("# Seed sensitivity — {b}, target {target}, {icache}\n");
    println!(
        "{:>12} {:>9} {:>12} {:>12} {:>9}",
        "seed", "dilation", "actual", "estimated", "error"
    );
    let mut errors = Vec::new();
    for seed in seeds {
        let eval = ReferenceEvaluation::for_benchmark(
            b,
            &ProcessorKind::P1111.mdes(),
            EvalConfig { events, seed, ..EvalConfig::default() },
            &[icache],
            &[],
            &[],
        );
        let d = eval.dilation_of(&target.mdes());
        let est = eval.estimate_icache_misses(icache, d).unwrap();
        let compiled = eval.compile_target(&target.mdes());
        let act = simulate_caches(
            eval.program(),
            &compiled,
            seed,
            events,
            &[(StreamKind::Instruction, icache)],
        )[0];
        let err = (est - act as f64) / act as f64;
        errors.push(err);
        println!("{seed:>12x} {d:>9.3} {act:>12} {est:>12.0} {:>8.1}%", 100.0 * err);
    }
    let mean = errors.iter().map(|e| e.abs()).sum::<f64>() / errors.len() as f64;
    let spread = errors.iter().cloned().fold(f64::MIN, f64::max)
        - errors.iter().cloned().fold(f64::MAX, f64::min);
    println!("\nmean |error| {:.1}%, error spread {:.1} points", 100.0 * mean, 100.0 * spread);
    println!("(dilation varies only via profile-guided layout; estimates stay informative");
    println!(" across inputs — the conclusions do not hinge on one seed)");
}
