//! Figure 6: estimated vs dilated misses as a function of dilation, for
//! 085.gcc.
//!
//! Left panel: instruction-cache misses (1 KB direct-mapped and 16 KB
//! 2-way) on traces dilated by d ∈ [1, 4], both simulated ("dilated") and
//! analytically estimated. Right panel: the same for the 16 KB and 128 KB
//! unified caches. The paper finds the instruction-cache interpolation
//! tracks closely over the whole range, while the small unified cache's
//! extrapolation degrades past d ≈ 2.
//!
//! Each dilation point needs its own dilated-trace simulation; the points
//! are independent, so they fan out over a [`ParallelSweep`] and print in
//! dilation order.

use mhe_bench::{events, l1_large, l1_small, l2_large, l2_small, simulate_caches_dilated, SEED};
use mhe_cache::CacheConfig;
use mhe_core::evaluator::{EvalConfig, ReferenceEvaluation};
use mhe_core::parallel::ParallelSweep;
use mhe_trace::StreamKind;
use mhe_vliw::ProcessorKind;
use mhe_workload::Benchmark;

fn main() {
    let n = events();
    let b = Benchmark::Gcc;
    let eval = ReferenceEvaluation::for_benchmark(
        b,
        &ProcessorKind::P1111.mdes(),
        EvalConfig { events: n, seed: SEED, ..EvalConfig::default() },
        &[l1_small(), l1_large()],
        &[],
        &[l2_small(), l2_large()],
    );
    let plan: Vec<(StreamKind, CacheConfig)> = vec![
        (StreamKind::Instruction, l1_small()),
        (StreamKind::Instruction, l1_large()),
        (StreamKind::Unified, l2_small()),
        (StreamKind::Unified, l2_large()),
    ];

    println!("# Figure 6: Estimated and dilated misses vs dilation — {}\n", b.name());
    println!(
        "{:>5} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11}",
        "d",
        "I1K-dil",
        "I1K-est",
        "I16K-dil",
        "I16K-est",
        "U16K-dil",
        "U16K-est",
        "U128K-dil",
        "U128K-est"
    );
    let ds: Vec<f64> = (0..=12).map(|i| 1.0 + 0.25 * f64::from(i)).collect();
    let (rows, sweep) = ParallelSweep::new().map_timed(ds, |d| {
        let dil = simulate_caches_dilated(eval.program(), eval.reference(), d, SEED, n, &plan);
        let est = [
            eval.estimate_icache_misses(l1_small(), d).unwrap(),
            eval.estimate_icache_misses(l1_large(), d).unwrap(),
            eval.estimate_ucache_misses(l2_small(), d).unwrap(),
            eval.estimate_ucache_misses(l2_large(), d).unwrap(),
        ];
        (d, dil, est)
    });
    for (d, dil, est) in rows {
        println!(
            "{:>5.2} {:>11} {:>11.0} {:>11} {:>11.0} {:>11} {:>11.0} {:>11} {:>11.0}",
            d, dil[0], est[0], dil[1], est[1], dil[2], est[2], dil[3], est[3]
        );
    }
    println!("\npaper: instruction-cache estimates track the dilated misses closely over");
    println!("the whole range; the 16 KB unified cache tracks only up to d ~ 2.");
    eprintln!("[fig6] reference evaluation: {}", eval.metrics());
    eprintln!("[fig6] dilation sweep: {sweep}");
}
