//! Ablations of the dilation model's design choices (DESIGN.md §6).
//!
//! 1. **Interpolation basis** — AHH-collision interpolation (Eq. 4.12) vs
//!    naive linear interpolation in the line size; the paper argues misses
//!    are "a very nonlinear function of line size".
//! 2. **`u(L)` model** — the run-based derivation vs the formula as printed
//!    (Eq. 4.5), both validated against dilated-trace simulation.
//! 3. **Granule size** — sensitivity of the estimates to the trace-modeler
//!    granule (the paper fixes 10k / 200k).
//!
//! Errors are reported against simulation of explicitly dilated traces
//! (isolating model error from the uniform-dilation assumption).

use mhe_bench::{events, simulate_caches_dilated, SEED};
use mhe_cache::CacheConfig;
use mhe_core::evaluator::{EvalConfig, ReferenceEvaluation};
use mhe_core::icache::estimate_icache_misses_linear;
use mhe_model::ahh::UniqueLineModel;
use mhe_trace::StreamKind;
use mhe_vliw::ProcessorKind;
use mhe_workload::Benchmark;

fn mean_abs_err(errors: &[f64]) -> f64 {
    errors.iter().map(|e| e.abs()).sum::<f64>() / errors.len() as f64
}

fn main() {
    let n = events();
    let b = Benchmark::Gcc;
    let dilations = [1.3, 1.7, 2.2, 2.8, 3.3];
    println!("# Ablation study — {} / d in {dilations:?}\n", b.name());

    // --- Ablations 1 & 2 on two regimes: a small cache the workload
    // saturates and a large cache with steady-state interference.
    let caches = [mhe_bench::l1_small(), mhe_bench::l1_large()];
    let base_eval = ReferenceEvaluation::for_benchmark(
        b,
        &ProcessorKind::P1111.mdes(),
        EvalConfig { events: n, seed: SEED, ..EvalConfig::default() },
        &caches,
        &[],
        &[],
    );
    let printed_eval = ReferenceEvaluation::for_benchmark(
        b,
        &ProcessorKind::P1111.mdes(),
        EvalConfig {
            events: n,
            seed: SEED,
            model: UniqueLineModel::PrintedAhh,
            ..EvalConfig::default()
        },
        &caches,
        &[],
        &[],
    );
    for icache in caches {
        let truth: Vec<f64> = dilations
            .iter()
            .map(|&d| {
                simulate_caches_dilated(
                    base_eval.program(),
                    base_eval.reference(),
                    d,
                    SEED,
                    n,
                    &[(StreamKind::Instruction, icache)],
                )[0] as f64
            })
            .collect();
        println!("## 1+2. Interpolation basis / u(L) model — {icache}\n");
        println!(
            "{:>5} {:>12} {:>12} {:>12} {:>12}",
            "d", "dilated-sim", "AHH-run", "AHH-printed", "linear-L"
        );
        let mut err_run = Vec::new();
        let mut err_printed = Vec::new();
        let mut err_linear = Vec::new();
        let table = |cfg: CacheConfig| base_eval.icache_misses_measured(cfg);
        for (i, &d) in dilations.iter().enumerate() {
            let run = base_eval.estimate_icache_misses(icache, d).unwrap();
            let printed = printed_eval.estimate_icache_misses(icache, d).unwrap();
            let linear = estimate_icache_misses_linear(&table, icache, d).unwrap();
            err_run.push((run - truth[i]) / truth[i]);
            err_printed.push((printed - truth[i]) / truth[i]);
            err_linear.push((linear - truth[i]) / truth[i]);
            println!(
                "{:>5.2} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
                d, truth[i], run, printed, linear
            );
        }
        println!(
            "\nmean |error|: AHH-run {:.1}%  AHH-printed {:.1}%  linear-in-L {:.1}%\n",
            100.0 * mean_abs_err(&err_run),
            100.0 * mean_abs_err(&err_printed),
            100.0 * mean_abs_err(&err_linear),
        );
    }
    let icache = mhe_bench::l1_small();
    let truth: Vec<f64> = dilations
        .iter()
        .map(|&d| {
            simulate_caches_dilated(
                base_eval.program(),
                base_eval.reference(),
                d,
                SEED,
                n,
                &[(StreamKind::Instruction, icache)],
            )[0] as f64
        })
        .collect();

    // --- Ablation 3: granule size. ---
    println!("## 3. Granule-size sensitivity (instruction trace)\n");
    println!("{:>9} {:>10} {:>8} {:>8} | mean |est err| over d", "granule", "u(1)", "p1", "lav");
    for granule in [1_000usize, 5_000, 10_000, 50_000] {
        let eval = ReferenceEvaluation::for_benchmark(
            b,
            &ProcessorKind::P1111.mdes(),
            EvalConfig { events: n, seed: SEED, i_granule: granule, ..EvalConfig::default() },
            &[icache],
            &[],
            &[],
        );
        let errs: Vec<f64> = dilations
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                let est = eval.estimate_icache_misses(icache, d).unwrap();
                (est - truth[i]) / truth[i]
            })
            .collect();
        let p = eval.iparams();
        println!(
            "{granule:>9} {:>10.0} {:>8.3} {:>8.1} | {:>6.1}%",
            p.u1,
            p.p1,
            p.lav,
            100.0 * mean_abs_err(&errs)
        );
    }
    println!("\npaper: granules must be large enough that the incremental working-set");
    println!("change is small and the collision computation numerically stable.");
}
