//! Captures benchmark reference traces to `.mtr` (and `.din`) files.
//!
//! For each requested benchmark the reference trace — exactly the access
//! sequence `ReferenceEvaluation::build` measures — is streamed once into
//! a compact `.mtr` binary file and once into classic `din` text, and the
//! codec's accounting is reported: trace length, both file sizes, the
//! compression ratio, and bytes per access.
//!
//! Usage: `trace_capture [--obs|--obs-json] [BENCHMARK ...] [DIR]`
//!
//! Arguments naming a benchmark (paper-table names, e.g. `085.gcc`,
//! `unepic`; case-insensitive) select what to capture; any other argument
//! is taken as the output directory. Defaults: every benchmark, into
//! `$TMPDIR/mhe_traces`. The dynamic window follows `MHE_EVENTS`.
//!
//! Failures print a one-line diagnostic and exit with the workspace
//! convention: 3 for corrupt input, 4 for storage exhaustion.

use mhe_trace::codec::TraceWriter;
use mhe_trace::io::write_din;
use mhe_trace::TraceGenerator;
use mhe_vliw::ProcessorKind;
use mhe_workload::Benchmark;
use std::fs::File;
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// File stem for a benchmark (paper names contain dots: `085.gcc`).
fn stem(b: Benchmark) -> String {
    b.name().replace('.', "_")
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace_capture: {e}");
            std::process::ExitCode::from(mhe_bench::io_exit_code(&e))
        }
    }
}

fn run() -> std::io::Result<()> {
    let mut dir = std::env::temp_dir().join("mhe_traces");
    let mut benches: Vec<Benchmark> = Vec::new();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    mhe_bench::obs_from_args(&mut args);
    for arg in args {
        match mhe_bench::benchmark_by_name(&arg) {
            Some(b) => benches.push(b),
            None => dir = PathBuf::from(arg),
        }
    }
    if benches.is_empty() {
        benches = Benchmark::ALL.to_vec();
    }
    std::fs::create_dir_all(&dir)?;
    let events = mhe_bench::events();
    let mdes = ProcessorKind::P1111.mdes();

    println!("# Trace capture (events = {events}, dir = {})\n", dir.display());
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>7} {:>9} {:>9}",
        "benchmark", "accesses", "din B", "mtr B", "ratio", "B/access", "wall"
    );
    for b in benches {
        let obs_before = mhe_obs::Snapshot::now();
        let start = Instant::now();
        let program = b.generate();
        let compiled = mhe_bench::reference_compilation(&program, &mdes);
        let trace =
            || TraceGenerator::new(&program, &compiled, mhe_bench::SEED).with_event_limit(events);

        let mtr_path = dir.join(format!("{}.mtr", stem(b)));
        let mut w = TraceWriter::new(BufWriter::new(File::create(&mtr_path)?))?;
        w.write_all(trace())?;
        let stats = w.finish()?;
        write_din(File::create(dir.join(format!("{}.din", stem(b))))?, trace())?;

        println!(
            "{:<12} {:>10} {:>12} {:>12} {:>6.2}x {:>9.2} {:>8.3?}",
            b.name(),
            stats.accesses,
            stats.din_bytes,
            stats.bytes,
            stats.compression_ratio(),
            stats.bytes_per_access(),
            start.elapsed()
        );
        debug_assert_eq!(file_len(&mtr_path), stats.bytes, "codec byte accounting");
        mhe_bench::emit_obs_report(&format!("trace_capture/{}", b.name()), &obs_before);
    }
    println!("\nReplay captured files through the evaluator with: trace_replay [BENCHMARK]");
    Ok(())
}

fn file_len(path: &Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}
