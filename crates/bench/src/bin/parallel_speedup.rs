//! Parallel-evaluation speedup demonstration.
//!
//! Runs the same work twice — once on a single thread, once on all
//! available workers (`MHE_THREADS` or the machine's parallelism) — and
//! reports wall times, speedups, and the engine's metrics. Two sections:
//!
//! 1. **Engine fan-out**: one reference evaluation of 085.gcc over a
//!    multi-line-size instruction/data/unified cache space, so the
//!    per-line-size single-pass simulations fan out inside
//!    `ReferenceEvaluation::build`.
//! 2. **Sweep fan-out**: four independent benchmark evaluations driven by
//!    an outer [`ParallelSweep`] with the inner engine pinned to one
//!    thread, the shape the table/figure binaries use.
//!
//! On a machine with four or more cores both sections should show ≥2×
//! speedup; on fewer cores the run still verifies that the parallel and
//! sequential results are bit-identical. Nothing is asserted fatally, so
//! the binary is safe to run anywhere.

use mhe_cache::CacheConfig;
use mhe_core::evaluator::{EvalConfig, ReferenceEvaluation};
use mhe_core::parallel::{worker_threads, ParallelSweep};
use mhe_vliw::ProcessorKind;
use mhe_workload::Benchmark;
use std::time::Instant;

fn cache_space() -> (Vec<CacheConfig>, Vec<CacheConfig>, Vec<CacheConfig>) {
    // Four line sizes per stream => twelve independent single-pass
    // simulations plus the two trace models to spread over the pool.
    let lines = [16u32, 32, 64, 128];
    let icaches: Vec<CacheConfig> = lines
        .iter()
        .flat_map(|&l| {
            [CacheConfig::from_bytes(1024, 1, l), CacheConfig::from_bytes(16 * 1024, 2, l)]
        })
        .collect();
    let dcaches = icaches.clone();
    let ucaches: Vec<CacheConfig> = lines
        .iter()
        .flat_map(|&l| {
            [CacheConfig::from_bytes(16 * 1024, 2, l), CacheConfig::from_bytes(128 * 1024, 4, l)]
        })
        .collect();
    (icaches, dcaches, ucaches)
}

fn build(b: Benchmark, threads: usize, events: usize) -> ReferenceEvaluation {
    let (ic, dc, uc) = cache_space();
    ReferenceEvaluation::for_benchmark(
        b,
        &ProcessorKind::P1111.mdes(),
        EvalConfig { events, seed: mhe_bench::SEED, threads, ..EvalConfig::default() },
        &ic,
        &dc,
        &uc,
    )
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    mhe_bench::obs_from_args(&mut args);
    let n = mhe_bench::events();
    let workers = worker_threads();
    println!("# Parallel evaluation speedup (workers = {workers}, events = {n})\n");

    // Section 1: fan-out inside one reference evaluation.
    let obs_before = mhe_obs::Snapshot::now();
    let serial = build(Benchmark::Gcc, 1, n);
    let parallel = build(Benchmark::Gcc, 0, n);
    let identical = serial.imeasured() == parallel.imeasured()
        && serial.dmeasured() == parallel.dmeasured()
        && serial.umeasured() == parallel.umeasured();
    let (t1, tn) = (serial.metrics().sim_wall, parallel.metrics().sim_wall);
    println!("## Engine fan-out (085.gcc, {} configs)", serial.metrics().simulated_configs());
    println!("  1 thread : sim wall {:>8.3?}", t1);
    println!("  {workers:>2} threads: sim wall {:>8.3?}", tn);
    println!("  speedup  : {:.2}x", t1.as_secs_f64() / tn.as_secs_f64().max(1e-9));
    println!("  results bit-identical across thread counts: {identical}");
    println!("  metrics  : {}", parallel.metrics());
    if !identical {
        eprintln!("[parallel_speedup] WARNING: parallel results diverge from serial!");
    }
    mhe_bench::emit_obs_report("parallel_speedup/engine", &obs_before);

    // Section 2: fan-out across independent benchmark evaluations.
    let benches = vec![Benchmark::Epic, Benchmark::Unepic, Benchmark::Mipmap, Benchmark::Rasta];
    let obs_before = mhe_obs::Snapshot::now();
    let start = Instant::now();
    let serial_misses: Vec<u64> =
        benches.iter().map(|&b| build(b, 1, n).imeasured().values().sum()).collect();
    let wall1 = start.elapsed();
    let (par_misses, sweep) = ParallelSweep::new()
        .map_timed(benches.clone(), |b| build(b, 1, n).imeasured().values().sum::<u64>());
    println!("\n## Sweep fan-out ({} benchmarks, inner engine pinned to 1 thread)", benches.len());
    println!("  1 thread : wall {:>8.3?}", wall1);
    println!("  {workers:>2} threads: wall {:>8.3?}", sweep.wall);
    println!("  speedup  : {:.2}x", wall1.as_secs_f64() / sweep.wall.as_secs_f64().max(1e-9));
    println!("  results bit-identical across thread counts: {}", serial_misses == par_misses);
    println!("  sweep    : {sweep}");
    mhe_bench::emit_obs_report("parallel_speedup/sweep", &obs_before);
    println!("\nOn >= 4 cores both sections should report >= 2x; with MHE_THREADS=1 both");
    println!("collapse to 1.0x while producing the same miss counts.");
}
