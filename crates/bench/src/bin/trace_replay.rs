//! Replays captured trace files through the evaluator and checks the
//! results against the in-memory path, bit for bit.
//!
//! For each benchmark three evaluations run over the same cache design
//! space: the normal in-memory build, a `.mtr` replay, and a `.din`
//! replay (both files captured first from the in-memory evaluation). The
//! replayed miss maps and dilated estimates must match the in-memory ones
//! exactly; the report also shows the replay metrics — bytes read, decode
//! throughput, and how much smaller the binary trace is than `din` text
//! (the format targets at least a 4x reduction).
//!
//! Usage: `trace_replay [--obs|--obs-json] [BENCHMARK ...]` (paper-table
//! names, case-insensitive; `all` for every benchmark; default `085.gcc`
//! and `unepic`). Files go to `$TMPDIR/mhe_traces`; the dynamic window
//! follows `MHE_EVENTS`, the worker pool `MHE_THREADS`, and the
//! observability sink `MHE_OBS` (or the flags). With a sink enabled, one
//! `RunReport` per benchmark goes to stderr covering the trace-gen,
//! encode, decode, simulate, and estimate phases.
//!
//! Failures print a one-line diagnostic and exit with the workspace
//! convention: 2 bad arguments, 3 corrupt input (a `.mtr`/`.din` file
//! failing CRC or framing checks), 4 storage exhaustion.

use mhe_cache::CacheConfig;
use mhe_core::evaluator::{EvalConfig, ReferenceEvaluation};
use mhe_vliw::{Mdes, ProcessorKind};
use mhe_workload::Benchmark;
use std::fs::File;
use std::io::BufWriter;
use std::path::Path;

fn spaces() -> (Vec<CacheConfig>, Vec<CacheConfig>, Vec<CacheConfig>) {
    let l1 = vec![mhe_bench::l1_small(), mhe_bench::l1_large()];
    (l1.clone(), l1, vec![mhe_bench::l2_small(), mhe_bench::l2_large()])
}

/// Bitwise comparison of everything a replayed evaluation answers with:
/// the three measured miss maps and a dilated estimate per stream.
fn identical(a: &ReferenceEvaluation, b: &ReferenceEvaluation) -> bool {
    let est = |e: &ReferenceEvaluation| {
        (
            e.estimate_icache_misses(mhe_bench::l1_small(), 2.0).unwrap().to_bits(),
            e.estimate_ucache_misses(mhe_bench::l2_small(), 2.0).unwrap().to_bits(),
        )
    };
    a.imeasured() == b.imeasured()
        && a.dmeasured() == b.dmeasured()
        && a.umeasured() == b.umeasured()
        && est(a) == est(b)
}

fn replay(
    benchmark: Benchmark,
    mdes: &Mdes,
    cfg: EvalConfig,
    path: &Path,
) -> std::io::Result<ReferenceEvaluation> {
    let (ic, dc, uc) = spaces();
    ReferenceEvaluation::replay_file(benchmark.generate(), mdes, cfg, path, &ic, &dc, &uc)
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace_replay: {e}");
            std::process::ExitCode::from(mhe_bench::io_exit_code(&e))
        }
    }
}

fn run() -> std::io::Result<()> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    mhe_bench::obs_from_args(&mut args);
    let benches: Vec<Benchmark> = if args.iter().any(|a| a == "all") {
        Benchmark::ALL.to_vec()
    } else if args.is_empty() {
        vec![Benchmark::Gcc, Benchmark::Unepic]
    } else {
        args.iter()
            .map(|a| {
                mhe_bench::benchmark_by_name(a).unwrap_or_else(|| {
                    eprintln!("unknown benchmark {a:?}; known: all, {:?}", Benchmark::ALL);
                    std::process::exit(2);
                })
            })
            .collect()
    };
    let dir = std::env::temp_dir().join("mhe_traces");
    std::fs::create_dir_all(&dir)?;
    let events = mhe_bench::events();
    let mdes = ProcessorKind::P1111.mdes();
    let cfg = EvalConfig { events, seed: mhe_bench::SEED, ..EvalConfig::default() };
    let (ic, dc, uc) = spaces();

    println!("# Trace replay vs in-memory evaluation (events = {events})\n");
    let mut all_identical = true;
    let mut worst_ratio = f64::INFINITY;
    for b in benches {
        let obs_before = mhe_obs::Snapshot::now();
        let mem = ReferenceEvaluation::build(b.generate(), &mdes, cfg, &ic, &dc, &uc);
        let stem = b.name().replace('.', "_");
        let mtr_path = dir.join(format!("{stem}.mtr"));
        let din_path = dir.join(format!("{stem}.din"));
        mem.capture_mtr(BufWriter::new(File::create(&mtr_path)?))?;
        mem.capture_din(File::create(&din_path)?)?;

        println!("## {} ({} accesses)", b.name(), mem.metrics().trace_len);
        println!("  in-memory: {}", mem.metrics());
        for path in [&mtr_path, &din_path] {
            let r = replay(b, &mdes, cfg, path)?;
            let same = identical(&mem, &r);
            all_identical &= same;
            let replayed = r.metrics().replay.expect("file replay records metrics");
            println!("  replay {:>3}: bit-identical = {same}; {replayed}", ext(path));
            if ext(path) == "mtr" {
                worst_ratio = worst_ratio.min(replayed.compression_ratio());
            }
        }
        mhe_bench::emit_obs_report(&format!("trace_replay/{}", b.name()), &obs_before);
        println!();
    }
    println!("all replays bit-identical to in-memory evaluation: {all_identical}");
    println!(
        "worst mtr size reduction vs din: {worst_ratio:.2}x (target >= 4x: {})",
        if worst_ratio >= 4.0 { "PASS" } else { "MISS" }
    );
    if !all_identical {
        eprintln!("[trace_replay] WARNING: a replay diverged from the in-memory evaluation!");
        std::process::exit(1);
    }
    Ok(())
}

fn ext(path: &Path) -> &str {
    path.extension().and_then(|e| e.to_str()).unwrap_or("")
}
