//! Shared experiment plumbing for the table/figure reproduction binaries.
//!
//! Every binary regenerates one table or figure of the paper's evaluation
//! section (see DESIGN.md §5 for the index). Common choices live here so
//! the experiments agree on cache configurations, processors, the dynamic
//! window, and trace seeds.

#![warn(missing_docs)]

use mhe_cache::{Cache, CacheConfig};
use mhe_trace::{StreamKind, TraceGenerator};
use mhe_vliw::compile::Compiled;
use mhe_vliw::Mdes;
use mhe_workload::exec::BlockFrequencies;
use mhe_workload::ir::Program;
use mhe_workload::Benchmark;

/// Seed used by every experiment (branch decisions + data patterns).
pub const SEED: u64 = 0xC0FF_EE01;

/// Dynamic window in basic-block events; override with `MHE_EVENTS`
/// (parsed once, in [`mhe_core::env`]).
pub fn events() -> usize {
    mhe_core::env::events_or(200_000)
}

/// Strips the `--obs` / `--obs-json` flags from a binary's argument list,
/// selecting the corresponding observability sink. The flags mirror the
/// `MHE_OBS` environment variable; an explicit flag wins over the
/// environment.
pub fn obs_from_args(args: &mut Vec<String>) {
    let mut level = None;
    args.retain(|a| match a.as_str() {
        "--obs" => {
            level = Some(mhe_obs::ObsLevel::Text);
            false
        }
        "--obs-json" => {
            level = Some(mhe_obs::ObsLevel::Json);
            false
        }
        _ => true,
    });
    if let Some(level) = level {
        mhe_obs::set_level(level);
    }
}

/// Emits a [`mhe_obs::RunReport`] covering everything recorded since
/// `before` to the configured sink; a no-op with observability off.
pub fn emit_obs_report(label: &str, before: &mhe_obs::Snapshot) {
    if mhe_obs::enabled() {
        mhe_obs::RunReport::since(label, mhe_core::worker_threads(), before).emit();
    }
}

/// The paper's small L1 configuration: 1 KB direct-mapped, 32-byte lines.
pub fn l1_small() -> CacheConfig {
    CacheConfig::from_bytes(1024, 1, 32)
}

/// The paper's large L1 configuration: 16 KB 2-way, 32-byte lines.
pub fn l1_large() -> CacheConfig {
    CacheConfig::from_bytes(16 * 1024, 2, 32)
}

/// The paper's small unified configuration: 16 KB 2-way, 64-byte lines.
pub fn l2_small() -> CacheConfig {
    CacheConfig::from_bytes(16 * 1024, 2, 64)
}

/// The paper's large unified configuration: 128 KB 4-way, 64-byte lines.
pub fn l2_large() -> CacheConfig {
    CacheConfig::from_bytes(128 * 1024, 4, 64)
}

/// Simulates several caches over *one* pass of a compiled target's trace.
///
/// Each entry pairs a stream filter with a cache; instruction caches see
/// only instruction references, data caches only loads/stores, unified
/// caches everything. Returns per-cache miss counts in input order.
pub fn simulate_caches(
    program: &Program,
    compiled: &Compiled,
    seed: u64,
    events: usize,
    plan: &[(StreamKind, CacheConfig)],
) -> Vec<u64> {
    let mut caches: Vec<(StreamKind, Cache)> =
        plan.iter().map(|&(k, c)| (k, Cache::new(c))).collect();
    for a in TraceGenerator::new(program, compiled, seed).with_event_limit(events) {
        for (kind, cache) in &mut caches {
            if kind.admits(a.kind) {
                cache.access(a.addr);
            }
        }
    }
    caches.iter().map(|(_, c)| c.stats().misses).collect()
}

/// Like [`simulate_caches`] but over a dilated reference trace.
pub fn simulate_caches_dilated(
    program: &Program,
    reference: &Compiled,
    d: f64,
    seed: u64,
    events: usize,
    plan: &[(StreamKind, CacheConfig)],
) -> Vec<u64> {
    let mut caches: Vec<(StreamKind, Cache)> =
        plan.iter().map(|&(k, c)| (k, Cache::new(c))).collect();
    for a in
        mhe_trace::DilatedTraceGenerator::new(program, reference, d, seed).with_event_limit(events)
    {
        for (kind, cache) in &mut caches {
            if kind.admits(a.kind) {
                cache.access(a.addr);
            }
        }
    }
    caches.iter().map(|(_, c)| c.stats().misses).collect()
}

/// Formats a ratio with two decimals, the paper's table style.
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.2}")
}

/// Maps an I/O error onto the exit-status convention the workspace
/// binaries share: **3** for corrupt input (CRC mismatch, bad framing,
/// truncation), **4** for storage exhaustion mid-write, **1** otherwise.
/// Status 2 (bad configuration) is decided at argument-parsing time, not
/// from an error kind.
pub fn io_exit_code(e: &std::io::Error) -> u8 {
    match e.kind() {
        std::io::ErrorKind::InvalidData | std::io::ErrorKind::UnexpectedEof => 3,
        std::io::ErrorKind::StorageFull => 4,
        _ => 1,
    }
}

/// Looks up a benchmark by its paper-table name (case-insensitive),
/// e.g. `085.gcc` or `unepic`.
pub fn benchmark_by_name(name: &str) -> Option<Benchmark> {
    Benchmark::ALL.into_iter().find(|b| b.name().eq_ignore_ascii_case(name))
}

/// Compiles a program exactly as `ReferenceEvaluation::build` compiles its
/// reference: with the layout profile from [`SEED`] over the standard
/// 200 000-event profiling window. Traces generated from this compilation
/// are therefore bit-identical to the evaluator's reference trace.
pub fn reference_compilation(program: &Program, mdes: &Mdes) -> Compiled {
    let freq = BlockFrequencies::profile(program, SEED, 200_000);
    Compiled::build(program, mdes, Some(&freq))
}
