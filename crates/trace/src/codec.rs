//! Streaming binary trace codec: the `.mtr` format.
//!
//! The verbose text `din` format is the interchange lingua franca of the
//! 1990s tools the paper pipes together, but it costs ~8 bytes per
//! reference and must be re-parsed on every replay. `.mtr` is the compact
//! binary equivalent: address deltas, kept **per reference kind** (the
//! instruction stream is near-sequential while data references roam),
//! zigzag-mapped and packed as little-endian varints with the kind opcode
//! folded into the first byte. Sequential instruction fetches encode in a
//! single byte; a trace typically shrinks 4–8× versus its `din` text.
//!
//! # Layout
//!
//! ```text
//! file   := magic version frame* end
//! magic  := "MTR!"                      (4 bytes: 4D 54 52 21)
//! version:= 02                          (1 byte)
//! frame  := count payload_len crc payload
//! count  := u32 LE                      (accesses in the frame, > 0)
//! payload_len := u32 LE                 (bytes of payload)
//! crc    := u32 LE                      (CRC-32/IEEE of count, payload_len
//!                                        and payload bytes)
//! payload:= access{count}
//! access := first_byte cont_byte*
//! end    := count=0 payload_len=0 crc   (a CRC-valid all-zero header:
//!                                        the end-of-stream marker)
//! ```
//!
//! `first_byte` packs, from the least-significant bit: 5 payload bits,
//! 2 kind bits (`0` load, `1` store, `2` inst — matching the `din`
//! labels; `3` is invalid), and a continuation flag in bit 7.
//! Continuation bytes are plain LEB128 (7 payload bits + continuation
//! flag). The decoded value is `zigzag(addr - last[kind])` with wrapping
//! subtraction, so `u64::MAX`-magnitude jumps still encode in ≤ 10 bytes.
//! Every frame is self-contained: the per-kind `last` state resets to 0
//! at each frame boundary, so frames can be decoded (and replayed)
//! independently and a truncated file loses at most its final frame.
//!
//! Every frame carries a CRC-32 of its header fields and payload (see
//! [`crate::integrity`]), so any single-bit storage corruption is
//! *detected* — the reader reports `InvalidData` rather than decoding a
//! different-but-plausible trace. The file closes with an explicit
//! end-of-stream marker (a CRC-valid zero-count header), so a file
//! truncated at a frame boundary — the one cut a per-frame CRC cannot
//! see — is also detected instead of decoding as a shorter trace.
//!
//! [`TraceWriter`] and [`TraceReader`] operate in bounded memory — one
//! frame at a time — regardless of trace length. Any malformed input
//! (bad magic, unknown version, truncated header or payload, varint
//! overflow, invalid kind, payload/count mismatch) is reported as
//! [`std::io::ErrorKind::InvalidData`], never a panic.
//!
//! # Examples
//!
//! ```
//! use mhe_trace::codec::{read_mtr, write_mtr};
//! use mhe_trace::Access;
//!
//! let trace = vec![Access::inst(0x40), Access::inst(0x41), Access::load(0x9000)];
//! let mut buf = Vec::new();
//! let stats = write_mtr(&mut buf, trace.iter().copied())?;
//! assert_eq!(stats.accesses, 3);
//! assert_eq!(read_mtr(buf.as_slice())?, trace);
//! # Ok::<(), std::io::Error>(())
//! ```

use crate::access::{Access, AccessKind};
use crate::integrity::Crc32;
use crate::stats::din_text_bytes;
use std::io::{Error, ErrorKind, Read, Result, Write};

/// The four magic bytes opening every `.mtr` file.
pub const MAGIC: [u8; 4] = *b"MTR!";

/// Format version written (and the only one accepted) by this codec.
/// Version 2 added the per-frame CRC-32; version-1 files (no CRC) are
/// rejected with `InvalidData` rather than trusted.
pub const VERSION: u8 = 2;

/// Bytes of a frame header: count, payload length, CRC-32, each `u32` LE.
const FRAME_HEADER: usize = 12;

/// The end-of-stream marker: a frame header with count 0, payload length
/// 0 and the matching CRC-32 (of eight zero bytes).
const END_MARKER: [u8; FRAME_HEADER] = [0, 0, 0, 0, 0, 0, 0, 0, 0x69, 0xDF, 0x22, 0x65];

/// Default maximum accesses per frame.
pub const DEFAULT_FRAME_ACCESSES: usize = 1 << 16;

/// Upper bound accepted for a frame's access count (decoder safety rail).
pub const MAX_FRAME_ACCESSES: u32 = 1 << 24;

/// Upper bound accepted for a frame's payload length in bytes.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 28;

/// Accounting of one encode or decode session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CodecStats {
    /// Accesses encoded or decoded.
    pub accesses: u64,
    /// Complete frames written or read.
    pub frames: u64,
    /// Total `.mtr` bytes produced or consumed, including the file header.
    pub bytes: u64,
    /// Size of the same access stream as `din` text (see
    /// [`din_text_bytes`]).
    pub din_bytes: u64,
}

impl CodecStats {
    /// How many times smaller the `.mtr` bytes are than the equivalent
    /// `din` text (`> 1` is a win); 0 for an empty session.
    pub fn compression_ratio(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.din_bytes as f64 / self.bytes as f64
        }
    }

    /// Average encoded bytes per access; 0 for an empty session.
    pub fn bytes_per_access(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.bytes as f64 / self.accesses as f64
        }
    }
}

fn opcode(kind: AccessKind) -> u8 {
    match kind {
        AccessKind::Load => 0,
        AccessKind::Store => 1,
        AccessKind::Inst => 2,
    }
}

fn kind_of(op: u8) -> Option<AccessKind> {
    match op {
        0 => Some(AccessKind::Load),
        1 => Some(AccessKind::Store),
        2 => Some(AccessKind::Inst),
        _ => None,
    }
}

fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends one access to a frame payload, updating the per-kind state.
fn encode_access(payload: &mut Vec<u8>, last: &mut [u64; 3], a: Access) {
    let op = opcode(a.kind);
    let delta = a.addr.wrapping_sub(last[op as usize]) as i64;
    last[op as usize] = a.addr;
    let mut v = zigzag(delta);
    let mut first = ((v & 0x1F) as u8) | (op << 5);
    v >>= 5;
    if v != 0 {
        first |= 0x80;
    }
    payload.push(first);
    while v != 0 {
        let mut b = (v & 0x7F) as u8;
        v >>= 7;
        if v != 0 {
            b |= 0x80;
        }
        payload.push(b);
    }
}

fn invalid(msg: impl Into<String>) -> Error {
    Error::new(ErrorKind::InvalidData, msg.into())
}

/// Decodes one access from `payload` at `*pos`, updating the per-kind
/// state.
fn decode_access(payload: &[u8], pos: &mut usize, last: &mut [u64; 3]) -> Result<Access> {
    let first = *payload.get(*pos).ok_or_else(|| invalid("mtr frame payload truncated"))?;
    *pos += 1;
    let op = (first >> 5) & 0x3;
    let kind = kind_of(op).ok_or_else(|| invalid("mtr access has invalid kind opcode 3"))?;
    let mut v = u64::from(first & 0x1F);
    let mut shift = 5u32;
    let mut more = first & 0x80 != 0;
    while more {
        let b = *payload.get(*pos).ok_or_else(|| invalid("mtr frame payload truncated"))?;
        *pos += 1;
        if shift >= 64 || (shift == 61 && (b & 0x7F) > 0x7) {
            return Err(invalid("mtr varint overflows 64 bits"));
        }
        v |= u64::from(b & 0x7F) << shift;
        shift += 7;
        more = b & 0x80 != 0;
    }
    let addr = last[op as usize].wrapping_add(unzigzag(v) as u64);
    last[op as usize] = addr;
    Ok(Access { addr, kind })
}

/// Streaming `.mtr` encoder with bounded memory (one frame buffered).
///
/// Construction writes the file header; call [`TraceWriter::finish`] to
/// flush the final partial frame and the end-of-stream marker. A dropped,
/// unfinished writer leaves a file without the marker, which the reader
/// reports as truncated — a crash mid-capture is detected, not silently
/// read as a shorter trace.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    w: W,
    frame_accesses: usize,
    payload: Vec<u8>,
    count: u32,
    last: [u64; 3],
    stats: CodecStats,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer with the default frame size and emits the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the header.
    pub fn new(w: W) -> Result<Self> {
        Self::with_frame_accesses(w, DEFAULT_FRAME_ACCESSES)
    }

    /// Creates a writer that closes a frame every `frame_accesses`
    /// accesses.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the header.
    ///
    /// # Panics
    ///
    /// Panics if `frame_accesses` is 0 or exceeds [`MAX_FRAME_ACCESSES`].
    pub fn with_frame_accesses(mut w: W, frame_accesses: usize) -> Result<Self> {
        assert!(
            frame_accesses >= 1 && frame_accesses <= MAX_FRAME_ACCESSES as usize,
            "frame size {frame_accesses} out of range"
        );
        w.write_all(&MAGIC)?;
        w.write_all(&[VERSION])?;
        Ok(Self {
            w,
            frame_accesses,
            payload: Vec::new(),
            count: 0,
            last: [0; 3],
            stats: CodecStats { bytes: MAGIC.len() as u64 + 1, ..CodecStats::default() },
        })
    }

    /// Appends one access, flushing a frame when it fills.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn push(&mut self, a: Access) -> Result<()> {
        encode_access(&mut self.payload, &mut self.last, a);
        self.count += 1;
        self.stats.accesses += 1;
        self.stats.din_bytes += din_text_bytes([a]);
        if self.count as usize >= self.frame_accesses {
            self.flush_frame()?;
        }
        Ok(())
    }

    /// Appends a whole access stream.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_all(&mut self, trace: impl IntoIterator<Item = Access>) -> Result<()> {
        for a in trace {
            self.push(a)?;
        }
        Ok(())
    }

    fn flush_frame(&mut self) -> Result<()> {
        if self.count == 0 {
            return Ok(());
        }
        let _obs = mhe_obs::span(mhe_obs::Phase::Encode);
        let payload_len = u32::try_from(self.payload.len())
            .map_err(|_| invalid("mtr frame payload exceeds u32"))?;
        let mut crc = Crc32::new();
        crc.update(&self.count.to_le_bytes());
        crc.update(&payload_len.to_le_bytes());
        crc.update(&self.payload);
        self.w.write_all(&self.count.to_le_bytes())?;
        self.w.write_all(&payload_len.to_le_bytes())?;
        self.w.write_all(&crc.finish().to_le_bytes())?;
        self.w.write_all(&self.payload)?;
        mhe_obs::add_events(mhe_obs::Phase::Encode, u64::from(self.count));
        mhe_obs::add_bytes(mhe_obs::Phase::Encode, FRAME_HEADER as u64 + u64::from(payload_len));
        self.stats.bytes += FRAME_HEADER as u64 + u64::from(payload_len);
        self.stats.frames += 1;
        self.payload.clear();
        self.count = 0;
        self.last = [0; 3];
        Ok(())
    }

    /// Accounting so far (bytes reflect completed frames plus the header).
    pub fn stats(&self) -> CodecStats {
        self.stats
    }

    /// Flushes the final partial frame, writes the end-of-stream marker
    /// and flushes the underlying writer, returning the session's
    /// accounting.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self) -> Result<CodecStats> {
        self.flush_frame()?;
        self.w.write_all(&END_MARKER)?;
        self.stats.bytes += END_MARKER.len() as u64;
        self.w.flush()?;
        Ok(self.stats)
    }
}

/// Streaming `.mtr` decoder with bounded memory (one frame decoded at a
/// time).
///
/// Use [`TraceReader::next_frame`] to consume whole frames — the natural
/// replay chunk — or iterate access by access; the iterator yields
/// `io::Result<Access>` and fuses after the first error.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    r: R,
    current: std::vec::IntoIter<Access>,
    stats: CodecStats,
    poisoned: bool,
    finished: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a reader, validating the magic and version.
    ///
    /// # Errors
    ///
    /// [`std::io::ErrorKind::InvalidData`] if the header is missing,
    /// foreign, or of an unsupported version; otherwise propagates I/O
    /// errors.
    pub fn new(mut r: R) -> Result<Self> {
        let mut header = [0u8; 5];
        r.read_exact(&mut header).map_err(|e| {
            if e.kind() == ErrorKind::UnexpectedEof {
                invalid("mtr header truncated")
            } else {
                e
            }
        })?;
        if header[..4] != MAGIC {
            return Err(invalid(format!("not an mtr file (magic {:02x?})", &header[..4])));
        }
        if header[4] != VERSION {
            return Err(invalid(format!(
                "unsupported mtr version {} (expected {VERSION})",
                header[4]
            )));
        }
        Ok(Self {
            r,
            current: Vec::new().into_iter(),
            stats: CodecStats { bytes: 5, ..CodecStats::default() },
            poisoned: false,
            finished: false,
        })
    }

    /// Reads and decodes the next whole frame; `Ok(None)` at a clean end
    /// of file.
    ///
    /// # Errors
    ///
    /// [`std::io::ErrorKind::InvalidData`] for any truncation or
    /// corruption; otherwise propagates I/O errors. After an error the
    /// reader is poisoned and further calls return `Ok(None)`.
    pub fn next_frame(&mut self) -> Result<Option<Vec<Access>>> {
        if self.poisoned || self.finished {
            return Ok(None);
        }
        let _obs = mhe_obs::span(mhe_obs::Phase::Decode);
        // Read the first header byte alone so a bare end of file (zero
        // bytes where a frame could start) is distinguishable from a
        // header cut mid-way. Either way the file is truncated: a
        // complete file ends with the explicit end-of-stream marker.
        let mut header = [0u8; FRAME_HEADER];
        loop {
            match self.r.read(&mut header[..1]) {
                Ok(0) => {
                    return self.poison(invalid("mtr file truncated: missing end-of-stream marker"))
                }
                Ok(_) => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return self.poison(e),
            }
        }
        if let Err(e) = self.r.read_exact(&mut header[1..]) {
            return if e.kind() == ErrorKind::UnexpectedEof {
                self.poison(invalid("mtr frame header truncated"))
            } else {
                self.poison(e)
            };
        }
        let count = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let payload_len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        let stored_crc = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        if count == 0 && payload_len == 0 {
            if header != END_MARKER {
                return self.poison(invalid(format!(
                    "mtr end-of-stream marker has a bad CRC (stored {stored_crc:08x}): \
                     the file is corrupt"
                )));
            }
            // Nothing may follow the marker.
            let mut probe = [0u8; 1];
            loop {
                match self.r.read(&mut probe) {
                    Ok(0) => break,
                    Ok(_) => {
                        return self
                            .poison(invalid("trailing bytes after mtr end-of-stream marker"))
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => return self.poison(e),
                }
            }
            self.finished = true;
            self.stats.bytes += FRAME_HEADER as u64;
            return Ok(None);
        }
        if count == 0 || count > MAX_FRAME_ACCESSES {
            return self.poison(invalid(format!("mtr frame count {count} out of range")));
        }
        if payload_len > MAX_FRAME_PAYLOAD {
            return self.poison(invalid(format!("mtr frame payload {payload_len} out of range")));
        }
        let mut payload = vec![0u8; payload_len as usize];
        if let Err(e) = self.r.read_exact(&mut payload) {
            return if e.kind() == ErrorKind::UnexpectedEof {
                self.poison(invalid("mtr frame payload truncated"))
            } else {
                self.poison(e)
            };
        }
        let mut crc = Crc32::new();
        crc.update(&header[..8]);
        crc.update(&payload);
        let actual_crc = crc.finish();
        if actual_crc != stored_crc {
            return self.poison(invalid(format!(
                "mtr frame CRC mismatch (stored {stored_crc:08x}, computed {actual_crc:08x}): \
                 the file is corrupt"
            )));
        }
        let mut out = Vec::with_capacity(count as usize);
        let mut last = [0u64; 3];
        let mut pos = 0usize;
        for _ in 0..count {
            match decode_access(&payload, &mut pos, &mut last) {
                Ok(a) => out.push(a),
                Err(e) => return self.poison(e),
            }
        }
        if pos != payload.len() {
            return self.poison(invalid(format!(
                "mtr frame has {} trailing payload bytes",
                payload.len() - pos
            )));
        }
        self.stats.bytes += FRAME_HEADER as u64 + u64::from(payload_len);
        self.stats.frames += 1;
        self.stats.accesses += u64::from(count);
        self.stats.din_bytes += din_text_bytes(out.iter().copied());
        mhe_obs::add_events(mhe_obs::Phase::Decode, u64::from(count));
        mhe_obs::add_bytes(mhe_obs::Phase::Decode, FRAME_HEADER as u64 + u64::from(payload_len));
        Ok(Some(out))
    }

    fn poison<T>(&mut self, e: Error) -> Result<Option<T>> {
        self.poisoned = true;
        Err(e)
    }

    /// Accounting of everything decoded so far.
    pub fn stats(&self) -> CodecStats {
        self.stats
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<Access>;

    fn next(&mut self) -> Option<Result<Access>> {
        if let Some(a) = self.current.next() {
            return Some(Ok(a));
        }
        match self.next_frame() {
            Ok(Some(frame)) => {
                self.current = frame.into_iter();
                self.current.next().map(Ok)
            }
            Ok(None) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

/// Writes a whole access stream as one `.mtr` file.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_mtr<W: Write>(w: W, trace: impl IntoIterator<Item = Access>) -> Result<CodecStats> {
    let mut tw = TraceWriter::new(w)?;
    tw.write_all(trace)?;
    tw.finish()
}

/// Reads a whole `.mtr` file into memory.
///
/// Convenience for tests and small traces; replay paths should consume
/// [`TraceReader`] frame by frame instead.
///
/// # Errors
///
/// As for [`TraceReader`].
pub fn read_mtr<R: Read>(r: R) -> Result<Vec<Access>> {
    let mut reader = TraceReader::new(r)?;
    let mut out = Vec::new();
    while let Some(frame) = reader.next_frame()? {
        out.extend(frame);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_trace(n: usize) -> Vec<Access> {
        let mut x = 0x1234_5678_9abc_def0u64;
        (0..n)
            .map(|i| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                match x % 3 {
                    0 => Access::inst(0x4000 + i as u64),
                    1 => Access::load((x >> 20) % 100_000),
                    _ => Access::store((x >> 30) % 50_000),
                }
            })
            .collect()
    }

    #[test]
    fn roundtrip_mixed_trace() {
        let trace = mixed_trace(200_000);
        let mut buf = Vec::new();
        let stats = write_mtr(&mut buf, trace.iter().copied()).unwrap();
        assert_eq!(stats.accesses, trace.len() as u64);
        assert_eq!(stats.bytes, buf.len() as u64);
        assert_eq!(read_mtr(buf.as_slice()).unwrap(), trace);
    }

    /// Builds a syntactically framed file around `payload` with a correct
    /// CRC and a closing end-of-stream marker, so tests of deeper
    /// validation layers get past the CRC and truncation checks.
    fn framed(count: u32, payload: &[u8]) -> Vec<u8> {
        let mut buf = MAGIC.to_vec();
        buf.push(VERSION);
        let mut crc = Crc32::new();
        crc.update(&count.to_le_bytes());
        crc.update(&(payload.len() as u32).to_le_bytes());
        crc.update(payload);
        buf.extend(count.to_le_bytes());
        buf.extend((payload.len() as u32).to_le_bytes());
        buf.extend(crc.finish().to_le_bytes());
        buf.extend(payload);
        buf.extend(END_MARKER);
        buf
    }

    #[test]
    fn roundtrip_empty_trace_is_header_and_end_marker() {
        let mut buf = Vec::new();
        let stats = write_mtr(&mut buf, std::iter::empty()).unwrap();
        assert_eq!(
            buf,
            [0x4D, 0x54, 0x52, 0x21, 0x02, 0, 0, 0, 0, 0, 0, 0, 0, 0x69, 0xDF, 0x22, 0x65]
        );
        assert_eq!(stats.frames, 0);
        assert_eq!(stats.bytes, buf.len() as u64);
        assert_eq!(read_mtr(buf.as_slice()).unwrap(), Vec::new());
    }

    #[test]
    fn missing_end_marker_is_reported_as_truncation() {
        let trace = mixed_trace(100);
        let mut buf = Vec::new();
        write_mtr(&mut buf, trace.iter().copied()).unwrap();
        // Cutting exactly at the frame boundary (the one cut the
        // per-frame CRC cannot see) removes only the end marker.
        buf.truncate(buf.len() - FRAME_HEADER);
        let err = read_mtr(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        assert!(err.to_string().contains("end-of-stream"), "{err}");
    }

    #[test]
    fn trailing_bytes_after_end_marker_rejected() {
        let trace = mixed_trace(10);
        let mut buf = Vec::new();
        write_mtr(&mut buf, trace.iter().copied()).unwrap();
        buf.push(0x00);
        let err = read_mtr(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("trailing bytes"), "{err}");
    }

    #[test]
    fn multi_frame_roundtrip_and_frame_independence() {
        let trace = mixed_trace(1000);
        let mut buf = Vec::new();
        let mut w = TraceWriter::with_frame_accesses(&mut buf, 64).unwrap();
        w.write_all(trace.iter().copied()).unwrap();
        let stats = w.finish().unwrap();
        assert_eq!(stats.frames, 1000_u64.div_ceil(64));
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        let mut back = Vec::new();
        let mut frames = 0;
        while let Some(f) = r.next_frame().unwrap() {
            assert!(f.len() <= 64);
            back.extend(f);
            frames += 1;
        }
        assert_eq!(frames, stats.frames);
        assert_eq!(back, trace);
        assert_eq!(r.stats().accesses, trace.len() as u64);
        assert_eq!(r.stats().bytes, buf.len() as u64);
    }

    #[test]
    fn sequential_instruction_stream_is_one_byte_per_access() {
        let trace: Vec<Access> = (0..10_000).map(|i| Access::inst(0x1000 + i)).collect();
        let mut buf = Vec::new();
        let stats = write_mtr(&mut buf, trace.iter().copied()).unwrap();
        // Header (5) + frame header (12) + 2 bytes for the first jump +
        // 1 byte for each sequential delta.
        assert!(stats.bytes_per_access() < 1.01, "{} bytes/access", stats.bytes_per_access());
        assert!(stats.compression_ratio() > 6.0, "ratio {}", stats.compression_ratio());
    }

    #[test]
    fn extreme_addresses_roundtrip() {
        let trace = vec![
            Access::load(0),
            Access::load(u64::MAX),
            Access::load(0),
            Access::store(u64::MAX),
            Access::inst(1 << 63),
            Access::inst(0),
            Access::load(u64::MAX / 2),
        ];
        let mut buf = Vec::new();
        write_mtr(&mut buf, trace.iter().copied()).unwrap();
        assert_eq!(read_mtr(buf.as_slice()).unwrap(), trace);
    }

    #[test]
    fn truncated_payload_is_invalid_data() {
        let mut buf = Vec::new();
        write_mtr(&mut buf, mixed_trace(100)).unwrap();
        for cut in [buf.len() - 1, buf.len() - 10, 14] {
            let err = read_mtr(&buf[..cut]).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::InvalidData, "cut at {cut}: {err}");
        }
    }

    #[test]
    fn truncated_header_is_invalid_data() {
        let mut buf = Vec::new();
        write_mtr(&mut buf, mixed_trace(10)).unwrap();
        for cut in [0, 3, 4] {
            let err = read_mtr(&buf[..cut]).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::InvalidData, "cut at {cut}");
        }
        // A cut inside a frame header (after the file header).
        let err = read_mtr(&buf[..7]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
    }

    #[test]
    fn foreign_magic_and_version_rejected() {
        let err = read_mtr(&b"DIN!\x02"[..]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        assert!(err.to_string().contains("magic"), "{err}");
        // v1 (pre-CRC) and future versions are both refused.
        for version in [b"MTR!\x01".as_slice(), b"MTR!\x03".as_slice()] {
            let err = read_mtr(version).unwrap_err();
            assert!(err.to_string().contains("version"), "{err}");
        }
    }

    #[test]
    fn invalid_kind_opcode_rejected() {
        // Hand-built frame: count 1, payload = one byte with kind bits 11.
        let buf = framed(1, &[0b0110_0000]);
        let err = read_mtr(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        assert!(err.to_string().contains("kind"), "{err}");
    }

    #[test]
    fn trailing_payload_bytes_rejected() {
        // inst delta 1, then a stray byte the count does not explain.
        let buf = framed(1, &[0b0100_0010, 0x00]);
        let err = read_mtr(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn varint_overflow_rejected() {
        // A valid first byte (load, continuation set) followed by enough
        // all-ones continuation bytes to exceed 64 decoded bits.
        let payload: Vec<u8> = std::iter::once(0x9F).chain(std::iter::repeat_n(0xFF, 9)).collect();
        let buf = framed(1, &payload);
        let err = read_mtr(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        assert!(err.to_string().contains("varint"), "{err}");
    }

    #[test]
    fn zero_count_frame_rejected() {
        // count = 0 with a non-empty payload is not an end marker.
        let buf = framed(0, &[0x00]);
        let err = read_mtr(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("count"), "{err}");
    }

    #[test]
    fn oversized_declared_payload_rejected() {
        // The length bound is checked before any payload (or CRC) work, so
        // the CRC field can be garbage here.
        let mut buf = MAGIC.to_vec();
        buf.push(VERSION);
        buf.extend(1u32.to_le_bytes());
        buf.extend((MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        buf.extend(0u32.to_le_bytes());
        let err = read_mtr(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
    }

    #[test]
    fn corrupted_frame_fails_the_crc_check() {
        let trace = mixed_trace(100);
        let mut buf = Vec::new();
        write_mtr(&mut buf, trace.iter().copied()).unwrap();
        // Flip one bit in the first frame's payload; the CRC must catch it.
        let target = 5 + FRAME_HEADER; // first payload byte
        buf[target] ^= 0x10;
        let err = read_mtr(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        assert!(err.to_string().contains("CRC"), "{err}");
    }

    #[test]
    fn iterator_yields_accesses_and_fuses_on_error() {
        let trace = mixed_trace(300);
        let mut buf = Vec::new();
        write_mtr(&mut buf, trace.iter().copied()).unwrap();
        let collected: Vec<Access> =
            TraceReader::new(buf.as_slice()).unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(collected, trace);

        let cut = &buf[..buf.len() - 3];
        let mut r = TraceReader::new(cut).unwrap();
        let mut saw_err = false;
        for item in &mut r {
            if item.is_err() {
                saw_err = true;
                break;
            }
        }
        assert!(saw_err);
        assert!(r.next().is_none(), "reader must fuse after an error");
    }

    #[test]
    fn zigzag_is_a_bijection_on_edges() {
        for d in [0i64, 1, -1, i64::MAX, i64::MIN, 42, -4242] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
    }
}
