//! Address-trace generation for memory-hierarchy evaluation.
//!
//! Reproduces the paper's trace-generation pipeline: the machine-independent
//! event trace (from `mhe-workload`'s execution engine) is combined with a
//! processor's linked binary (from `mhe-vliw`) to produce instruction, data,
//! or joint address traces ([`gen::TraceGenerator`]). The module [`dilate`]
//! additionally constructs *dilated* reference traces — the synthetic
//! ground truth the paper uses to isolate the errors of its dilation model.
//!
//! Traces interchange in two formats: the classic `din` text ([`io`])
//! and the compact streaming binary `.mtr` codec ([`codec`]), both
//! consumable in bounded memory for capture/replay workflows.
//!
//! All addresses are 4-byte-word addresses.
//!
//! # Quick start
//!
//! ```
//! use mhe_trace::{access::StreamKind, gen::TraceGenerator};
//! use mhe_vliw::{compile::Compiled, mdes::ProcessorKind};
//! use mhe_workload::Benchmark;
//!
//! let program = Benchmark::Unepic.generate();
//! let compiled = Compiled::build(&program, &ProcessorKind::P1111.mdes(), None);
//! let icache_trace = TraceGenerator::new(&program, &compiled, 42)
//!     .stream(StreamKind::Instruction)
//!     .take(10_000);
//! assert_eq!(icache_trace.count(), 10_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod access;
pub mod codec;
pub mod dilate;
pub mod gen;
pub mod integrity;
pub mod io;
pub mod stats;

pub use access::{Access, AccessKind, StreamKind};
pub use codec::{CodecStats, TraceReader, TraceWriter};
pub use dilate::DilatedTraceGenerator;
pub use gen::TraceGenerator;
pub use integrity::{crc32, Crc32, Crc32Reader, Crc32Writer};
pub use stats::TraceStats;
