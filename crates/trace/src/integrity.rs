//! CRC-32 integrity protection for the workspace's persistent artifacts.
//!
//! Both on-disk formats the workspace owns — `.mtr` trace files
//! ([`crate::codec`]) and the spacewalk evaluation database — carry CRC-32
//! checks so that storage corruption surfaces as a structured
//! `InvalidData` error instead of silently decoding to
//! different-but-plausible data. The polynomial is the IEEE/zlib one
//! (reflected `0xEDB8_8320`), chosen because it detects **every**
//! single-bit error and every burst up to 32 bits, which is exactly the
//! fault model the injection harness exercises (bit flips and truncation).
//!
//! The module is dependency-free: a 256-entry table built in a `const fn`
//! at compile time, plus [`Read`]/[`Write`] adapters that digest bytes as
//! they stream so callers never need a second pass over the data.

use std::io::{Read, Result, Write};

/// The 256-entry lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// An incremental CRC-32 (IEEE) digest.
///
/// # Examples
///
/// ```
/// use mhe_trace::integrity::Crc32;
/// let mut d = Crc32::new();
/// d.update(b"123456789");
/// assert_eq!(d.finish(), 0xCBF4_3926); // the standard check value
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh digest.
    pub fn new() -> Self {
        Self { state: 0 }
    }

    /// Feeds bytes into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = !self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = !crc;
    }

    /// The digest of everything fed so far.
    pub fn finish(&self) -> u32 {
        self.state
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut d = Crc32::new();
    d.update(bytes);
    d.finish()
}

/// A [`Write`] adapter that digests every byte passing through it.
#[derive(Debug)]
pub struct Crc32Writer<W: Write> {
    inner: W,
    digest: Crc32,
}

impl<W: Write> Crc32Writer<W> {
    /// Wraps `inner` with a fresh digest.
    pub fn new(inner: W) -> Self {
        Self { inner, digest: Crc32::new() }
    }

    /// The digest of everything written so far.
    pub fn digest(&self) -> u32 {
        self.digest.finish()
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// The inner writer (e.g. to append the footer outside the digest).
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }
}

impl<W: Write> Write for Crc32Writer<W> {
    fn write(&mut self, buf: &[u8]) -> Result<usize> {
        let n = self.inner.write(buf)?;
        self.digest.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }
}

/// A [`Read`] adapter that digests every byte passing through it.
#[derive(Debug)]
pub struct Crc32Reader<R: Read> {
    inner: R,
    digest: Crc32,
}

impl<R: Read> Crc32Reader<R> {
    /// Wraps `inner` with a fresh digest.
    pub fn new(inner: R) -> Self {
        Self { inner, digest: Crc32::new() }
    }

    /// The digest of everything read so far.
    pub fn digest(&self) -> u32 {
        self.digest.finish()
    }

    /// The inner reader (e.g. to read the footer outside the digest).
    pub fn get_mut(&mut self) -> &mut R {
        &mut self.inner
    }
}

impl<R: Read> Read for Crc32Reader<R> {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        let n = self.inner.read(buf)?;
        self.digest.update(&buf[..n]);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value_matches_the_standard() {
        // Every CRC-32/IEEE implementation must produce this value for
        // the ASCII digits 1-9.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut d = Crc32::new();
        for chunk in data.chunks(97) {
            d.update(chunk);
        }
        assert_eq!(d.finish(), crc32(&data));
    }

    #[test]
    fn every_single_bit_flip_changes_the_digest() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let base = crc32(data);
        let mut copy = data.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip at byte {byte} bit {bit} undetected");
                copy[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn adapters_digest_what_streams_through() {
        let data: Vec<u8> = (0..5_000u32).flat_map(|x| x.to_le_bytes()).collect();
        let mut w = Crc32Writer::new(Vec::new());
        std::io::Write::write_all(&mut w, &data).unwrap();
        assert_eq!(w.digest(), crc32(&data));
        let buf = w.into_inner();
        let mut r = Crc32Reader::new(buf.as_slice());
        let mut back = Vec::new();
        std::io::Read::read_to_end(&mut r, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(r.digest(), crc32(&data));
    }
}
