//! Construction of *dilated* reference traces (Section 4 of the paper).
//!
//! "A trace, dilated by `d`, is derived from `T_ref` as follows. The length
//! of each basic block in `T_ref` is increased by a multiplicative factor
//! `d`. Additionally, the starting address of each basic block is adjusted
//! to ensure that the dilated basic blocks do not overlap […] The lengths
//! and offsets of basic blocks are rounded to the nearest word so that
//! contiguous basic blocks in the original trace remain contiguous but do
//! not overlap."
//!
//! Simulating caches on these traces gives the paper's "Dilated" columns —
//! the ground truth that the analytic dilation model (in `mhe-core`) is
//! judged against, isolating model error from the uniform-dilation
//! assumption's error.

use crate::access::{Access, StreamKind};
use mhe_vliw::compile::Compiled;
use mhe_vliw::link::TEXT_BASE;
use mhe_vliw::sched::MemRef;
use mhe_workload::data::{spill_address, PatternEngine};
use mhe_workload::exec::{BlockEvent, Executor};
use mhe_workload::ir::{BlockId, ProcId, Program};

/// A block placement table for a dilated image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DilatedLayout {
    /// `(start, words)` per `[proc][block]`.
    blocks: Vec<Vec<(u64, u32)>>,
    /// Total dilated text size in words.
    pub text_words: u64,
}

impl DilatedLayout {
    /// Scales the reference image's block offsets and sizes by `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d <= 0`.
    pub fn new(reference: &Compiled, d: f64) -> Self {
        assert!(d > 0.0, "dilation must be positive, got {d}");
        // Process blocks in address order so contiguity is preserved.
        let mut order: Vec<(u64, usize, usize)> = Vec::new();
        for (pi, blocks) in reference.binary.blocks.iter().enumerate() {
            for (bi, b) in blocks.iter().enumerate() {
                order.push((b.start, pi, bi));
            }
        }
        order.sort_unstable();
        let mut blocks: Vec<Vec<(u64, u32)>> =
            reference.binary.blocks.iter().map(|v| vec![(0u64, 0u32); v.len()]).collect();
        let mut prev_end = TEXT_BASE;
        let mut max_end = TEXT_BASE;
        for (start, pi, bi) in order {
            let offset = start - TEXT_BASE;
            let words = reference.binary.blocks[pi][bi].words;
            // B + d·O, rounded to the nearest word, non-overlap enforced.
            let new_start = (TEXT_BASE + (offset as f64 * d).round() as u64).max(prev_end);
            let new_words = ((f64::from(words) * d).round() as u32).max(1);
            blocks[pi][bi] = (new_start, new_words);
            prev_end = new_start + u64::from(new_words);
            max_end = max_end.max(prev_end);
        }
        Self { blocks, text_words: max_end - TEXT_BASE }
    }

    /// Placement of one block in the dilated image.
    pub fn block(&self, proc: ProcId, block: BlockId) -> (u64, u32) {
        self.blocks[proc.0 as usize][block.0 as usize]
    }
}

/// Streaming generator for the dilated reference trace.
///
/// With `d = 1` this produces exactly the reference trace of
/// [`crate::gen::TraceGenerator`] (same seed, same compiled image).
///
/// # Examples
///
/// ```
/// use mhe_trace::dilate::DilatedTraceGenerator;
/// use mhe_vliw::{compile::Compiled, mdes::ProcessorKind};
/// use mhe_workload::Benchmark;
///
/// let program = Benchmark::Unepic.generate();
/// let reference = Compiled::build(&program, &ProcessorKind::P1111.mdes(), None);
/// let trace: Vec<_> = DilatedTraceGenerator::new(&program, &reference, 1.4, 42)
///     .take(1000)
///     .collect();
/// assert_eq!(trace.len(), 1000);
/// ```
#[derive(Debug)]
pub struct DilatedTraceGenerator<'a> {
    program: &'a Program,
    reference: &'a Compiled,
    layout: DilatedLayout,
    events: Executor<'a>,
    engine: PatternEngine,
    buffer: Vec<Access>,
    pos: usize,
    events_left: Option<usize>,
    emitted: u64,
}

impl Drop for DilatedTraceGenerator<'_> {
    fn drop(&mut self) {
        // One batch flush per generator keeps the per-access path clean.
        mhe_obs::add_events(mhe_obs::Phase::TraceGen, self.emitted);
    }
}

impl<'a> DilatedTraceGenerator<'a> {
    /// Creates a generator for the reference trace dilated by `d`.
    ///
    /// `seed` must match the seed used for the undilated reference trace for
    /// the two traces to be comparable.
    ///
    /// # Panics
    ///
    /// Panics if `d <= 0`.
    pub fn new(program: &'a Program, reference: &'a Compiled, d: f64, seed: u64) -> Self {
        Self {
            program,
            reference,
            layout: DilatedLayout::new(reference, d),
            events: Executor::new(program, seed),
            engine: PatternEngine::new(program, seed ^ 0xD11A_7107_5EED_0001),
            buffer: Vec::with_capacity(64),
            pos: 0,
            events_left: None,
            emitted: 0,
        }
    }

    /// Bounds the trace to the first `n` basic-block events, so traces of
    /// different processors (or dilations) cover the *same* dynamic program
    /// window — the comparison the paper's normalized miss counts need.
    pub fn with_event_limit(mut self, n: usize) -> Self {
        self.events_left = Some(n);
        self
    }

    /// Restricts the stream to one component.
    pub fn stream(self, kind: StreamKind) -> impl Iterator<Item = Access> + 'a {
        self.filter(move |a| kind.admits(a.kind))
    }

    fn fill(&mut self, ev: BlockEvent) {
        self.buffer.clear();
        self.pos = 0;
        let (start, words) = self.layout.block(ev.proc, ev.block);
        for w in 0..u64::from(words) {
            self.buffer.push(Access::inst(start + w));
        }
        // The data component is the *reference* schedule's, undilated.
        let sched = self.reference.sched.block(ev.proc, ev.block);
        for cycle in &sched.cycles {
            for op in cycle {
                let Some(mem) = op.mem else { continue };
                let access = match mem {
                    MemRef::Pattern(pid) => {
                        let addr = self.engine.next(self.program, pid, ev.depth);
                        if op.class == mhe_workload::ir::OpClass::Store {
                            Access::store(addr)
                        } else {
                            Access::load(addr)
                        }
                    }
                    MemRef::Speculative(pid) => {
                        Access::load(self.engine.peek(self.program, pid, ev.depth))
                    }
                    MemRef::SpillStore(slot) => Access::store(spill_address(ev.depth, slot)),
                    MemRef::SpillLoad(slot) => Access::load(spill_address(ev.depth, slot)),
                };
                self.buffer.push(access);
            }
        }
    }
}

impl Iterator for DilatedTraceGenerator<'_> {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        while self.pos >= self.buffer.len() {
            if let Some(left) = &mut self.events_left {
                if *left == 0 {
                    return None;
                }
                *left -= 1;
            }
            let ev = self.events.next()?;
            self.fill(ev);
        }
        let a = self.buffer[self.pos];
        self.pos += 1;
        self.emitted += 1;
        Some(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGenerator;
    use mhe_vliw::mdes::ProcessorKind;
    use mhe_workload::Benchmark;

    fn reference() -> (Program, Compiled) {
        let p = Benchmark::Unepic.generate();
        let c = Compiled::build(&p, &ProcessorKind::P1111.mdes(), None);
        (p, c)
    }

    #[test]
    fn unit_dilation_reproduces_reference_trace() {
        let (p, c) = reference();
        let a: Vec<_> = TraceGenerator::new(&p, &c, 7).take(50_000).collect();
        let b: Vec<_> = DilatedTraceGenerator::new(&p, &c, 1.0, 7).take(50_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn dilated_blocks_do_not_overlap() {
        let (_, c) = reference();
        for d in [1.3, 2.0, 2.7] {
            let layout = DilatedLayout::new(&c, d);
            let mut spans: Vec<(u64, u64)> =
                layout.blocks.iter().flatten().map(|&(s, w)| (s, s + u64::from(w))).collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "d={d}: overlap {w:?}");
            }
        }
    }

    #[test]
    fn dilated_text_scales_with_d() {
        let (_, c) = reference();
        let base = DilatedLayout::new(&c, 1.0).text_words as f64;
        for d in [1.5, 2.0, 3.0] {
            let t = DilatedLayout::new(&c, d).text_words as f64;
            let ratio = t / base;
            assert!((ratio / d - 1.0).abs() < 0.02, "d={d}: text scaled by {ratio}");
        }
    }

    #[test]
    fn block_lengths_scale_individually() {
        let (_, c) = reference();
        let d = 2.0;
        let layout = DilatedLayout::new(&c, d);
        for (pi, blocks) in c.binary.blocks.iter().enumerate() {
            for (bi, b) in blocks.iter().enumerate() {
                let (_, w) = layout.blocks[pi][bi];
                let expect = (f64::from(b.words) * d).round() as u32;
                assert_eq!(w, expect.max(1), "proc {pi} block {bi}");
            }
        }
    }

    #[test]
    fn data_component_is_unchanged_by_dilation() {
        let (p, c) = reference();
        let a: Vec<_> =
            TraceGenerator::new(&p, &c, 7).stream(StreamKind::Data).take(20_000).collect();
        let b: Vec<_> = DilatedTraceGenerator::new(&p, &c, 2.5, 7)
            .stream(StreamKind::Data)
            .take(20_000)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "dilation must be positive")]
    fn zero_dilation_panics() {
        let (_, c) = reference();
        let _ = DilatedLayout::new(&c, 0.0);
    }
}
