//! Trace file I/O in the classic `din` (dinero) format.
//!
//! The paper's toolchain pipes traces between separate executables (probed
//! executable → Etrans → Cheetah); this module provides the equivalent
//! interchange capability: any access stream can be written to, and read
//! back from, the three-column dinero format that 1990s cache tools
//! (dineroIII/IV, Cheetah) consumed:
//!
//! ```text
//! <label> <hex address>
//! ```
//!
//! with labels `0` = load, `1` = store, `2` = instruction fetch. Addresses
//! are word addresses, matching the rest of the crate.

use crate::access::{Access, AccessKind};
use std::io::{BufRead, Write};

/// Writes an access stream in `din` format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use mhe_trace::{io::{read_din, write_din}, Access};
/// let trace = vec![Access::inst(0x100), Access::load(0x9000), Access::store(0x9001)];
/// let mut buf = Vec::new();
/// write_din(&mut buf, trace.iter().copied())?;
/// let back = read_din(buf.as_slice())?;
/// assert_eq!(back, trace);
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write_din<W: Write>(
    mut w: W,
    trace: impl IntoIterator<Item = Access>,
) -> std::io::Result<()> {
    for a in trace {
        let label = match a.kind {
            AccessKind::Load => 0,
            AccessKind::Store => 1,
            AccessKind::Inst => 2,
        };
        writeln!(w, "{label} {:x}", a.addr)?;
    }
    Ok(())
}

/// Reads a `din`-format trace written by [`write_din`] (or any dinero
/// producer using labels 0/1/2).
///
/// Blank lines are skipped; anything else malformed is an
/// [`std::io::ErrorKind::InvalidData`] error naming the line.
///
/// # Errors
///
/// Propagates I/O errors and reports malformed lines.
pub fn read_din<R: BufRead>(r: R) -> std::io::Result<Vec<Access>> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        let bad = || {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed din line {}: {text:?}", i + 1),
            )
        };
        let mut parts = text.split_whitespace();
        let label = parts.next().ok_or_else(bad)?;
        let addr_text = parts.next().ok_or_else(bad)?;
        let addr = u64::from_str_radix(addr_text, 16).map_err(|_| bad())?;
        let kind = match label {
            "0" => AccessKind::Load,
            "1" => AccessKind::Store,
            "2" => AccessKind::Inst,
            _ => return Err(bad()),
        };
        out.push(Access { addr, kind });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGenerator;
    use mhe_vliw::{compile::Compiled, ProcessorKind};
    use mhe_workload::Benchmark;

    #[test]
    fn roundtrip_preserves_real_traces() {
        let p = Benchmark::Unepic.generate();
        let c = Compiled::build(&p, &ProcessorKind::P1111.mdes(), None);
        let trace: Vec<Access> = TraceGenerator::new(&p, &c, 9).take(20_000).collect();
        let mut buf = Vec::new();
        write_din(&mut buf, trace.iter().copied()).unwrap();
        let back = read_din(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn labels_match_dinero_convention() {
        let mut buf = Vec::new();
        write_din(&mut buf, [Access::load(16), Access::store(17), Access::inst(0x40)]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "0 10\n1 11\n2 40\n");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let back = read_din("0 10\n\n  \n2 20\n".as_bytes()).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn malformed_lines_name_their_position() {
        let err = read_din("0 10\nnot-a-line\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn unknown_labels_rejected() {
        assert!(read_din("7 10\n".as_bytes()).is_err());
    }

    #[test]
    fn non_hex_addresses_rejected() {
        assert!(read_din("0 zz\n".as_bytes()).is_err());
    }
}
