//! Trace file I/O in the classic `din` (dinero) format.
//!
//! The paper's toolchain pipes traces between separate executables (probed
//! executable → Etrans → Cheetah); this module provides the equivalent
//! interchange capability: any access stream can be written to, and read
//! back from, the three-column dinero format that 1990s cache tools
//! (dineroIII/IV, Cheetah) consumed:
//!
//! ```text
//! <label> <hex address>
//! ```
//!
//! with labels `0` = load, `1` = store, `2` = instruction fetch. Addresses
//! are word addresses, matching the rest of the crate.

use crate::access::{Access, AccessKind};
use std::io::{BufRead, BufWriter, Lines, Write};

/// Writes an access stream in `din` format.
///
/// The writer is buffered internally, so handing this function a raw
/// `File` does not cost one syscall per access.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use mhe_trace::{io::{read_din, write_din}, Access};
/// let trace = vec![Access::inst(0x100), Access::load(0x9000), Access::store(0x9001)];
/// let mut buf = Vec::new();
/// write_din(&mut buf, trace.iter().copied())?;
/// let back = read_din(buf.as_slice())?;
/// assert_eq!(back, trace);
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write_din<W: Write>(w: W, trace: impl IntoIterator<Item = Access>) -> std::io::Result<()> {
    let _obs = mhe_obs::span(mhe_obs::Phase::Encode);
    let mut written = 0u64;
    let mut lines = 0u64;
    let mut w = CountingWriter { inner: BufWriter::new(w), bytes: &mut written };
    for a in trace {
        let label = match a.kind {
            AccessKind::Load => 0,
            AccessKind::Store => 1,
            AccessKind::Inst => 2,
        };
        writeln!(w, "{label} {:x}", a.addr)?;
        lines += 1;
    }
    w.inner.flush()?;
    drop(w);
    mhe_obs::add_events(mhe_obs::Phase::Encode, lines);
    mhe_obs::add_bytes(mhe_obs::Phase::Encode, written);
    Ok(())
}

/// Byte-counting shim so [`write_din`] can report encode throughput
/// without a second pass over the trace.
struct CountingWriter<'a, W: Write> {
    inner: BufWriter<W>,
    bytes: &'a mut u64,
}

impl<W: Write> Write for CountingWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        *self.bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Streaming iterator over a `din`-format trace.
///
/// Created by [`read_din_iter`] (or [`read_din_iter_named`] to attach a
/// source path); yields one access per non-blank line in constant memory,
/// so arbitrarily long capture files can be replayed without materialising
/// them. A malformed line yields an
/// [`std::io::ErrorKind::InvalidData`] error naming its position (and the
/// source, when one was given), after which the iterator fuses.
#[derive(Debug)]
pub struct DinLines<R: BufRead> {
    lines: Lines<R>,
    source: Option<String>,
    line_no: usize,
    poisoned: bool,
    parsed: u64,
    bytes: u64,
}

impl<R: BufRead> Drop for DinLines<R> {
    fn drop(&mut self) {
        // One batch flush per stream keeps the per-line path probe-free.
        mhe_obs::add_events(mhe_obs::Phase::Decode, self.parsed);
        mhe_obs::add_bytes(mhe_obs::Phase::Decode, self.bytes);
    }
}

impl<R: BufRead> Iterator for DinLines<R> {
    type Item = std::io::Result<Access>;

    fn next(&mut self) -> Option<std::io::Result<Access>> {
        if self.poisoned {
            return None;
        }
        loop {
            let line = match self.lines.next()? {
                Ok(line) => line,
                Err(e) => {
                    self.poisoned = true;
                    let e = match &self.source {
                        Some(path) => std::io::Error::new(e.kind(), format!("{path}: {e}")),
                        None => e,
                    };
                    return Some(Err(e));
                }
            };
            self.line_no += 1;
            self.bytes += line.len() as u64 + 1;
            let text = line.trim();
            if text.is_empty() {
                continue;
            }
            match parse_din_line(text, self.line_no, self.source.as_deref()) {
                Ok(a) => {
                    self.parsed += 1;
                    return Some(Ok(a));
                }
                Err(e) => {
                    self.poisoned = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

fn parse_din_line(text: &str, line_no: usize, source: Option<&str>) -> std::io::Result<Access> {
    let bad = || {
        let place = match source {
            Some(path) => format!("{path}:{line_no}"),
            None => format!("line {line_no}"),
        };
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("malformed din {place}: {text:?}"),
        )
    };
    let mut parts = text.split_whitespace();
    let label = parts.next().ok_or_else(bad)?;
    let addr_text = parts.next().ok_or_else(bad)?;
    let addr = u64::from_str_radix(addr_text, 16).map_err(|_| bad())?;
    let kind = match label {
        "0" => AccessKind::Load,
        "1" => AccessKind::Store,
        "2" => AccessKind::Inst,
        _ => return Err(bad()),
    };
    Ok(Access { addr, kind })
}

/// Streams a `din`-format trace without materialising it.
///
/// # Examples
///
/// ```
/// use mhe_trace::io::read_din_iter;
/// let accesses: Vec<_> =
///     read_din_iter("2 40\n0 9000\n".as_bytes()).collect::<Result<_, _>>()?;
/// assert_eq!(accesses.len(), 2);
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn read_din_iter<R: BufRead>(r: R) -> DinLines<R> {
    DinLines { lines: r.lines(), source: None, line_no: 0, poisoned: false, parsed: 0, bytes: 0 }
}

/// Like [`read_din_iter`], but attaches a source name (typically the file
/// path) so malformed-line errors read `malformed din <path>:<line>` —
/// essential when a sweep replays many capture files and one is corrupt.
///
/// # Examples
///
/// ```
/// use mhe_trace::io::read_din_iter_named;
/// let err = read_din_iter_named("bogus\n".as_bytes(), "run/app.din")
///     .next()
///     .unwrap()
///     .unwrap_err();
/// assert!(err.to_string().contains("run/app.din:1"));
/// ```
pub fn read_din_iter_named<R: BufRead>(r: R, source: impl Into<String>) -> DinLines<R> {
    DinLines {
        lines: r.lines(),
        source: Some(source.into()),
        line_no: 0,
        poisoned: false,
        parsed: 0,
        bytes: 0,
    }
}

/// Reads a `din`-format trace written by [`write_din`] (or any dinero
/// producer using labels 0/1/2).
///
/// Blank lines are skipped; anything else malformed is an
/// [`std::io::ErrorKind::InvalidData`] error naming the line.
///
/// # Errors
///
/// Propagates I/O errors and reports malformed lines.
pub fn read_din<R: BufRead>(r: R) -> std::io::Result<Vec<Access>> {
    read_din_iter(r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGenerator;
    use mhe_vliw::{compile::Compiled, ProcessorKind};
    use mhe_workload::Benchmark;

    #[test]
    fn roundtrip_preserves_real_traces() {
        let p = Benchmark::Unepic.generate();
        let c = Compiled::build(&p, &ProcessorKind::P1111.mdes(), None);
        let trace: Vec<Access> = TraceGenerator::new(&p, &c, 9).take(20_000).collect();
        let mut buf = Vec::new();
        write_din(&mut buf, trace.iter().copied()).unwrap();
        let back = read_din(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn labels_match_dinero_convention() {
        let mut buf = Vec::new();
        write_din(&mut buf, [Access::load(16), Access::store(17), Access::inst(0x40)]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "0 10\n1 11\n2 40\n");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let back = read_din("0 10\n\n  \n2 20\n".as_bytes()).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn malformed_lines_name_their_position() {
        let err = read_din("0 10\nnot-a-line\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn unknown_labels_rejected() {
        assert!(read_din("7 10\n".as_bytes()).is_err());
    }

    #[test]
    fn non_hex_addresses_rejected() {
        assert!(read_din("0 zz\n".as_bytes()).is_err());
    }

    #[test]
    fn iter_streams_without_materialising() {
        let p = Benchmark::Unepic.generate();
        let c = Compiled::build(&p, &ProcessorKind::P1111.mdes(), None);
        let trace: Vec<Access> = TraceGenerator::new(&p, &c, 9).take(5_000).collect();
        let mut buf = Vec::new();
        write_din(&mut buf, trace.iter().copied()).unwrap();
        let mut n = 0usize;
        for (i, item) in read_din_iter(buf.as_slice()).enumerate() {
            assert_eq!(item.unwrap(), trace[i]);
            n += 1;
        }
        assert_eq!(n, trace.len());
    }

    #[test]
    fn iter_skips_blank_lines() {
        let items: Vec<Access> =
            read_din_iter("0 10\n\n  \n2 20\n".as_bytes()).collect::<Result<_, _>>().unwrap();
        assert_eq!(items, vec![Access::load(0x10), Access::inst(0x20)]);
    }

    #[test]
    fn iter_malformed_lines_name_their_position_and_fuse() {
        let mut it = read_din_iter("0 10\n\nnot-a-line\n2 20\n".as_bytes());
        assert_eq!(it.next().unwrap().unwrap(), Access::load(0x10));
        let err = it.next().unwrap().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 3"), "{err}");
        assert!(it.next().is_none(), "iterator must fuse after an error");
    }

    #[test]
    fn named_iter_reports_the_source_path() {
        let mut it = read_din_iter_named("0 10\nbroken\n".as_bytes(), "traces/app.din");
        assert_eq!(it.next().unwrap().unwrap(), Access::load(0x10));
        let err = it.next().unwrap().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("traces/app.din:2"), "{err}");
    }

    #[test]
    fn iter_rejects_unknown_labels_and_bad_hex() {
        assert!(read_din_iter("7 10\n".as_bytes()).next().unwrap().is_err());
        assert!(read_din_iter("0 zz\n".as_bytes()).next().unwrap().is_err());
    }
}
