//! The trace generator: event trace × linked binary → address trace.
//!
//! Mirrors the paper's trace generator, which "creates an instruction and/or
//! data address trace that models the application executing on the
//! synthesized processor" by symbolically executing the linked executable
//! along the event trace. For every executed block we emit its instruction
//! words (from the block's linked placement) followed by its data references
//! in schedule order — original pattern references advance the deterministic
//! [`PatternEngine`]; speculative duplicates peek it; spill traffic hits the
//! frame's spill area.

use crate::access::{Access, StreamKind};
use mhe_vliw::compile::Compiled;
use mhe_vliw::sched::MemRef;
use mhe_workload::data::{spill_address, PatternEngine};
use mhe_workload::exec::{BlockEvent, Executor};
use mhe_workload::ir::Program;

/// Streaming address-trace generator.
///
/// Iterates [`Access`]es for the program executing on the compiled machine.
/// The generator is deterministic: `(program, compiled, seed)` fully fixes
/// the trace.
///
/// # Examples
///
/// ```
/// use mhe_trace::{access::StreamKind, gen::TraceGenerator};
/// use mhe_vliw::{compile::Compiled, mdes::ProcessorKind};
/// use mhe_workload::Benchmark;
///
/// let program = Benchmark::Unepic.generate();
/// let compiled = Compiled::build(&program, &ProcessorKind::P1111.mdes(), None);
/// let trace: Vec<_> = TraceGenerator::new(&program, &compiled, 42)
///     .stream(StreamKind::Unified)
///     .take(1000)
///     .collect();
/// assert_eq!(trace.len(), 1000);
/// ```
#[derive(Debug)]
pub struct TraceGenerator<'a> {
    program: &'a Program,
    compiled: &'a Compiled,
    events: Executor<'a>,
    engine: PatternEngine,
    buffer: Vec<Access>,
    pos: usize,
    events_left: Option<usize>,
    emitted: u64,
}

impl Drop for TraceGenerator<'_> {
    fn drop(&mut self) {
        // Flush the accesses this generator produced to the trace-gen
        // phase in one batch, so the per-access hot loop stays probe-free.
        mhe_obs::add_events(mhe_obs::Phase::TraceGen, self.emitted);
    }
}

impl<'a> TraceGenerator<'a> {
    /// Creates a generator; `seed` drives branch decisions and random data
    /// patterns (use the same seed across processors to model the same
    /// program input).
    pub fn new(program: &'a Program, compiled: &'a Compiled, seed: u64) -> Self {
        Self {
            program,
            compiled,
            events: Executor::new(program, seed),
            engine: PatternEngine::new(program, seed ^ 0xD11A_7107_5EED_0001),
            buffer: Vec::with_capacity(64),
            pos: 0,
            events_left: None,
            emitted: 0,
        }
    }

    /// Bounds the trace to the first `n` basic-block events, so traces of
    /// different processors (or dilations) cover the *same* dynamic program
    /// window — the comparison the paper's normalized miss counts need.
    pub fn with_event_limit(mut self, n: usize) -> Self {
        self.events_left = Some(n);
        self
    }

    /// Restricts the stream to one component (instruction / data / unified).
    pub fn stream(self, kind: StreamKind) -> impl Iterator<Item = Access> + 'a {
        self.filter(move |a| kind.admits(a.kind))
    }

    fn fill(&mut self, ev: BlockEvent) {
        self.buffer.clear();
        self.pos = 0;
        let layout = self.compiled.binary.block(ev.proc, ev.block);
        for w in 0..u64::from(layout.words) {
            self.buffer.push(Access::inst(layout.start + w));
        }
        let sched = self.compiled.sched.block(ev.proc, ev.block);
        for cycle in &sched.cycles {
            for op in cycle {
                let Some(mem) = op.mem else { continue };
                let access = match mem {
                    MemRef::Pattern(pid) => {
                        let addr = self.engine.next(self.program, pid, ev.depth);
                        if op.class == mhe_workload::ir::OpClass::Store {
                            Access::store(addr)
                        } else {
                            Access::load(addr)
                        }
                    }
                    MemRef::Speculative(pid) => {
                        Access::load(self.engine.peek(self.program, pid, ev.depth))
                    }
                    MemRef::SpillStore(slot) => Access::store(spill_address(ev.depth, slot)),
                    MemRef::SpillLoad(slot) => Access::load(spill_address(ev.depth, slot)),
                };
                self.buffer.push(access);
            }
        }
    }
}

impl Iterator for TraceGenerator<'_> {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        while self.pos >= self.buffer.len() {
            if let Some(left) = &mut self.events_left {
                if *left == 0 {
                    return None;
                }
                *left -= 1;
            }
            let ev = self.events.next()?;
            self.fill(ev);
        }
        let a = self.buffer[self.pos];
        self.pos += 1;
        self.emitted += 1;
        Some(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessKind;
    use mhe_vliw::link::TEXT_BASE;
    use mhe_vliw::mdes::ProcessorKind;
    use mhe_workload::Benchmark;

    fn setup(kind: ProcessorKind) -> (Program, Compiled) {
        let p = Benchmark::Unepic.generate();
        let c = Compiled::build(&p, &kind.mdes(), None);
        (p, c)
    }

    #[test]
    fn trace_is_deterministic() {
        let (p, c) = setup(ProcessorKind::P1111);
        let a: Vec<_> = TraceGenerator::new(&p, &c, 7).take(20_000).collect();
        let b: Vec<_> = TraceGenerator::new(&p, &c, 7).take(20_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn instruction_addresses_lie_in_text() {
        let (p, c) = setup(ProcessorKind::P2111);
        let end = TEXT_BASE + c.binary.text_words;
        for a in TraceGenerator::new(&p, &c, 3).take(50_000) {
            if a.kind == AccessKind::Inst {
                assert!((TEXT_BASE..end).contains(&a.addr), "inst addr {:#x}", a.addr);
            }
        }
    }

    #[test]
    fn data_addresses_lie_outside_text() {
        let (p, c) = setup(ProcessorKind::P1111);
        for a in TraceGenerator::new(&p, &c, 3).take(50_000) {
            if a.kind.is_data() {
                assert!(a.addr >= mhe_workload::data::DATA_BASE, "data addr {:#x}", a.addr);
            }
        }
    }

    #[test]
    fn trace_contains_all_kinds() {
        let (p, c) = setup(ProcessorKind::P1111);
        let mut seen = (false, false, false);
        for a in TraceGenerator::new(&p, &c, 5).take(100_000) {
            match a.kind {
                AccessKind::Inst => seen.0 = true,
                AccessKind::Load => seen.1 = true,
                AccessKind::Store => seen.2 = true,
            }
        }
        assert!(seen.0 && seen.1 && seen.2, "{seen:?}");
    }

    #[test]
    fn data_component_nearly_identical_across_processors() {
        // The paper's step-1 assumption: the data trace of a wide processor
        // matches the reference processor's, apart from speculation and
        // spill perturbations.
        let p = Benchmark::Unepic.generate();
        let narrow = Compiled::build(&p, &ProcessorKind::P1111.mdes(), None);
        let wide = Compiled::build(&p, &ProcessorKind::P6332.mdes(), None);
        // Same dynamic window (event count) on both machines, so the
        // comparison is ref-for-ref over identical executed blocks.
        let events = 40_000;
        let a: Vec<u64> = TraceGenerator::new(&p, &narrow, 7)
            .with_event_limit(events)
            .stream(StreamKind::Data)
            .map(|x| x.addr)
            .collect();
        let b: Vec<u64> = TraceGenerator::new(&p, &wide, 7)
            .with_event_limit(events)
            .stream(StreamKind::Data)
            .map(|x| x.addr)
            .collect();
        // The wide trace is a supersequence-ish perturbation (extra
        // speculative and spill references); every narrow reference should
        // still appear, and the extras should be a modest fraction.
        use std::collections::HashMap;
        let mut count: HashMap<u64, i64> = HashMap::new();
        for &x in &b {
            *count.entry(x).or_insert(0) += 1;
        }
        let mut covered = 0usize;
        for &x in &a {
            if let Some(c) = count.get_mut(&x) {
                if *c > 0 {
                    *c -= 1;
                    covered += 1;
                }
            }
        }
        let coverage = covered as f64 / a.len() as f64;
        assert!(coverage > 0.95, "narrow data refs covered only {coverage:.3}");
        let extra = b.len() as f64 / a.len() as f64;
        assert!((1.0..1.5).contains(&extra), "wide trace has {extra:.2}x the data references");
    }

    #[test]
    fn stream_filters_are_exact_partition() {
        let (p, c) = setup(ProcessorKind::P3221);
        let total = 30_000;
        let unified: Vec<_> = TraceGenerator::new(&p, &c, 9).take(total).collect();
        let inst = unified.iter().filter(|a| a.kind == AccessKind::Inst).count();
        let data = unified.iter().filter(|a| a.kind.is_data()).count();
        assert_eq!(inst + data, total);
        // Instruction fetches dominate, as in the paper's trace sizes
        // (1200M instruction vs 450M data references for ghostscript).
        assert!(inst > data);
    }
}
