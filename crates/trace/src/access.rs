//! Address-trace primitives.
//!
//! All addresses are 4-byte-word addresses, as in the paper.

/// What kind of reference an [`Access`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch.
    Inst,
    /// Data load.
    Load,
    /// Data store.
    Store,
}

impl AccessKind {
    /// Whether this is a data (load or store) reference.
    pub fn is_data(self) -> bool {
        matches!(self, AccessKind::Load | AccessKind::Store)
    }
}

/// One reference of an address trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// Word address.
    pub addr: u64,
    /// Reference kind.
    pub kind: AccessKind,
}

impl Access {
    /// Creates an instruction-fetch reference.
    pub fn inst(addr: u64) -> Self {
        Self { addr, kind: AccessKind::Inst }
    }

    /// Creates a load reference.
    pub fn load(addr: u64) -> Self {
        Self { addr, kind: AccessKind::Load }
    }

    /// Creates a store reference.
    pub fn store(addr: u64) -> Self {
        Self { addr, kind: AccessKind::Store }
    }
}

/// Which component of the joint trace a consumer wants.
///
/// The paper's trace generator "is configurable to create instruction, data,
/// or joint instruction/data traces as needed".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKind {
    /// Instruction references only (drives the L1 instruction cache).
    Instruction,
    /// Data references only (drives the L1 data cache).
    Data,
    /// The joint trace (drives the L2 unified cache).
    Unified,
}

impl StreamKind {
    /// Whether an access belongs to this stream.
    pub fn admits(self, kind: AccessKind) -> bool {
        match self {
            StreamKind::Instruction => kind == AccessKind::Inst,
            StreamKind::Data => kind.is_data(),
            StreamKind::Unified => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_classify() {
        assert!(!AccessKind::Inst.is_data());
        assert!(AccessKind::Load.is_data());
        assert!(AccessKind::Store.is_data());
    }

    #[test]
    fn constructors_set_kind() {
        assert_eq!(Access::inst(5).kind, AccessKind::Inst);
        assert_eq!(Access::load(5).kind, AccessKind::Load);
        assert_eq!(Access::store(5).kind, AccessKind::Store);
    }

    #[test]
    fn stream_admission() {
        assert!(StreamKind::Instruction.admits(AccessKind::Inst));
        assert!(!StreamKind::Instruction.admits(AccessKind::Load));
        assert!(StreamKind::Data.admits(AccessKind::Store));
        assert!(!StreamKind::Data.admits(AccessKind::Inst));
        assert!(StreamKind::Unified.admits(AccessKind::Inst));
        assert!(StreamKind::Unified.admits(AccessKind::Load));
    }
}
