//! Summary statistics over address traces.

use crate::access::{Access, AccessKind};
use std::collections::HashSet;

/// Counts and footprint of a trace (or trace prefix).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Instruction references.
    pub inst: u64,
    /// Load references.
    pub loads: u64,
    /// Store references.
    pub stores: u64,
    /// Distinct word addresses touched.
    pub unique_words: u64,
    /// Distinct instruction word addresses touched.
    pub unique_inst_words: u64,
}

impl TraceStats {
    /// Collects statistics from an access stream.
    ///
    /// # Examples
    ///
    /// ```
    /// use mhe_trace::{access::Access, stats::TraceStats};
    /// let trace = [Access::inst(1), Access::inst(1), Access::load(9)];
    /// let s = TraceStats::collect(trace);
    /// assert_eq!(s.inst, 2);
    /// assert_eq!(s.loads, 1);
    /// assert_eq!(s.unique_words, 2);
    /// ```
    pub fn collect(trace: impl IntoIterator<Item = Access>) -> Self {
        let mut stats = TraceStats::default();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut seen_inst: HashSet<u64> = HashSet::new();
        for a in trace {
            match a.kind {
                AccessKind::Inst => {
                    stats.inst += 1;
                    seen_inst.insert(a.addr);
                }
                AccessKind::Load => stats.loads += 1,
                AccessKind::Store => stats.stores += 1,
            }
            seen.insert(a.addr);
        }
        stats.unique_words = seen.len() as u64;
        stats.unique_inst_words = seen_inst.len() as u64;
        stats
    }

    /// Total references.
    pub fn total(&self) -> u64 {
        self.inst + self.loads + self.stores
    }

    /// Data references.
    pub fn data(&self) -> u64 {
        self.loads + self.stores
    }
}

/// Bytes one access occupies as a `din` text line
/// (`<label> <hex address>\n`).
///
/// Used by the binary codec to report compression ratios against the
/// text interchange format without materialising the text.
pub fn din_line_bytes(a: Access) -> u64 {
    let hex_digits = if a.addr == 0 { 1 } else { u64::from(a.addr.ilog2() / 4 + 1) };
    // label + space + digits + newline.
    3 + hex_digits
}

/// Total bytes an access stream occupies as `din` text.
///
/// # Examples
///
/// ```
/// use mhe_trace::{stats::din_text_bytes, Access};
/// // "2 40\n" (5 bytes) + "0 9000\n" (7 bytes)
/// let n = din_text_bytes([Access::inst(0x40), Access::load(0x9000)]);
/// assert_eq!(n, 12);
/// ```
pub fn din_text_bytes(trace: impl IntoIterator<Item = Access>) -> u64 {
    trace.into_iter().map(din_line_bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGenerator;
    use mhe_vliw::{compile::Compiled, mdes::ProcessorKind};
    use mhe_workload::Benchmark;

    #[test]
    fn totals_add_up() {
        let s = TraceStats::collect([
            Access::inst(1),
            Access::load(2),
            Access::store(3),
            Access::store(3),
        ]);
        assert_eq!(s.total(), 4);
        assert_eq!(s.data(), 3);
        assert_eq!(s.unique_words, 3);
        assert_eq!(s.unique_inst_words, 1);
    }

    #[test]
    fn din_sizes_match_rendered_text() {
        let trace = [
            Access::inst(0),
            Access::load(0xF),
            Access::store(0x10),
            Access::inst(u64::MAX),
            Access::load(0x123456),
        ];
        let mut buf = Vec::new();
        crate::io::write_din(&mut buf, trace).unwrap();
        assert_eq!(din_text_bytes(trace), buf.len() as u64);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = TraceStats::collect(std::iter::empty());
        assert_eq!(s, TraceStats::default());
    }

    #[test]
    fn real_trace_footprint_is_bounded_by_text_plus_data() {
        let p = Benchmark::Unepic.generate();
        let c = Compiled::build(&p, &ProcessorKind::P1111.mdes(), None);
        let s = TraceStats::collect(TraceGenerator::new(&p, &c, 1).take(100_000));
        assert!(s.unique_inst_words <= c.binary.text_words);
        assert!(s.unique_words >= s.unique_inst_words);
        assert!(s.total() == 100_000);
    }
}
