//! Property tests for dilated-trace construction and trace generation.

use mhe_trace::dilate::{DilatedLayout, DilatedTraceGenerator};
use mhe_trace::gen::TraceGenerator;
use mhe_vliw::{compile::Compiled, ProcessorKind};
use mhe_workload::Benchmark;
use proptest::prelude::*;
use std::sync::OnceLock;

fn reference() -> &'static (mhe_workload::Program, Compiled) {
    static CELL: OnceLock<(mhe_workload::Program, Compiled)> = OnceLock::new();
    CELL.get_or_init(|| {
        let p = Benchmark::Unepic.generate();
        let c = Compiled::build(&p, &ProcessorKind::P1111.mdes(), None);
        (p, c)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dilated_layouts_never_overlap(d in 0.5f64..5.0) {
        let (program, compiled) = reference();
        let layout = DilatedLayout::new(compiled, d);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for (pi, proc) in program.procedures.iter().enumerate() {
            for bi in 0..proc.blocks.len() {
                let (s, w) = layout.block(
                    mhe_workload::ir::ProcId(pi as u32),
                    mhe_workload::ir::BlockId(bi as u32),
                );
                prop_assert!(w >= 1);
                spans.push((s, s + u64::from(w)));
            }
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlap: {:?}", w);
        }
    }

    #[test]
    fn dilated_text_scales_linearly(d in 1.0f64..4.0) {
        let (_, compiled) = reference();
        let base = DilatedLayout::new(compiled, 1.0).text_words as f64;
        let t = DilatedLayout::new(compiled, d).text_words as f64;
        let ratio = t / base;
        prop_assert!((ratio / d - 1.0).abs() < 0.03, "d={}, ratio={}", d, ratio);
    }

    #[test]
    fn data_component_invariant_under_dilation(d in 0.8f64..4.0, seed in 0u64..50) {
        let (program, compiled) = reference();
        let a: Vec<u64> = TraceGenerator::new(program, compiled, seed)
            .with_event_limit(2_000)
            .filter(|x| x.kind.is_data())
            .map(|x| x.addr)
            .collect();
        let b: Vec<u64> = DilatedTraceGenerator::new(program, compiled, d, seed)
            .with_event_limit(2_000)
            .filter(|x| x.kind.is_data())
            .map(|x| x.addr)
            .collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn event_limit_is_exact_and_composable(n in 1usize..5_000, seed in 0u64..50) {
        let (program, compiled) = reference();
        // The trace of the first n events is a prefix of the trace of the
        // first 2n events.
        let short: Vec<_> = TraceGenerator::new(program, compiled, seed)
            .with_event_limit(n)
            .collect();
        let long: Vec<_> = TraceGenerator::new(program, compiled, seed)
            .with_event_limit(2 * n)
            .collect();
        prop_assert!(long.len() >= short.len());
        prop_assert_eq!(&long[..short.len()], &short[..]);
    }
}
