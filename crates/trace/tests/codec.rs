//! Property and golden tests for the `.mtr` streaming trace codec.
//!
//! The properties: encoding round-trips arbitrary access streams exactly
//! (including duplicates, extreme addresses, and any frame size), and a
//! damaged file — truncated anywhere or with any byte flipped — never
//! panics the decoder: it either still decodes a valid frame-aligned
//! prefix or fails with `InvalidData`.
//!
//! The golden test pins the on-disk byte layout so the format cannot
//! drift silently: files written today must stay readable tomorrow.

use mhe_trace::codec::{read_mtr, write_mtr, TraceWriter};
use mhe_trace::{Access, AccessKind};
use proptest::prelude::*;
use std::io::ErrorKind;

fn access(kind: u8, addr: u64) -> Access {
    let kind = match kind % 3 {
        0 => AccessKind::Load,
        1 => AccessKind::Store,
        _ => AccessKind::Inst,
    };
    Access { kind, addr }
}

/// Addresses mixing locality, wide jumps, and the extremes.
fn addr_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..256,
        0x1000u64..0x2000,
        0u64..u64::MAX,
        Just(0u64),
        Just(u64::MAX),
        Just(u64::MAX - 1),
    ]
}

fn trace_strategy(max_len: usize) -> impl Strategy<Value = Vec<Access>> {
    prop::collection::vec((0u8..3, addr_strategy()).prop_map(|(k, a)| access(k, a)), 0..max_len)
}

/// Encodes with an explicit frame size, so cases cover single-frame,
/// multi-frame, and frame-boundary-aligned traces.
fn encode(trace: &[Access], frame_accesses: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = TraceWriter::with_frame_accesses(&mut buf, frame_accesses).unwrap();
    w.write_all(trace.iter().copied()).unwrap();
    w.finish().unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_is_exact(trace in trace_strategy(2_000), frame in 1usize..300) {
        let bytes = encode(&trace, frame);
        prop_assert_eq!(read_mtr(&bytes[..]).unwrap(), trace);
    }

    #[test]
    fn roundtrip_duplicate_heavy_streams(trace in prop::collection::vec(
        (0u8..3, 0u64..8).prop_map(|(k, a)| access(k, a)),
        0..1_500,
    )) {
        // Tiny address space: mostly zero deltas and repeated values, the
        // best case for the delta coder and a dedup stressor.
        let bytes = encode(&trace, 64);
        prop_assert_eq!(read_mtr(&bytes[..]).unwrap(), trace);
    }

    #[test]
    fn truncation_never_panics(trace in trace_strategy(400), frame in 1usize..64, cut_seed in 0u64..u64::MAX) {
        let bytes = encode(&trace, frame);
        let cut = (cut_seed % bytes.len() as u64) as usize;
        match read_mtr(&bytes[..cut]) {
            // A cut at a frame boundary is a clean EOF: the decoder
            // returns the frames before the cut, which must be an exact
            // prefix of the original stream.
            Ok(got) => {
                prop_assert!(got.len() <= trace.len());
                prop_assert_eq!(&trace[..got.len()], &got[..]);
                // The cut removed at least the file's final frame, so every
                // surviving frame is a full one.
                prop_assert_eq!(got.len() % frame, 0);
            }
            Err(e) => prop_assert_eq!(e.kind(), ErrorKind::InvalidData),
        }
    }

    #[test]
    fn corruption_never_panics(trace in trace_strategy(400), frame in 1usize..64, pos_seed in 0u64..u64::MAX, flip in 1u16..256) {
        let mut bytes = encode(&trace, frame);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip as u8;
        // Any single-byte corruption must be survivable: either the
        // stream still decodes (the flip produced another valid payload)
        // or the reader reports InvalidData — never a panic, never an
        // unbounded allocation.
        if let Err(e) = read_mtr(&bytes[..]) {
            prop_assert_eq!(e.kind(), ErrorKind::InvalidData);
        }
    }
}

#[test]
fn empty_trace_roundtrips_as_header_only_file() {
    let mut buf = Vec::new();
    write_mtr(&mut buf, std::iter::empty()).unwrap();
    assert_eq!(buf, b"MTR!\x01", "empty trace is exactly the 5-byte header");
    assert_eq!(read_mtr(&buf[..]).unwrap(), Vec::<Access>::new());
}

#[test]
fn golden_byte_layout_is_pinned() {
    // The written format is a compatibility contract; this test pins it.
    //
    //   magic "MTR!" | version 1
    //   frame: count=4 LE | payload_len=9 LE
    //   inst  0x40  : zigzag(0x40)=0x80  -> C0 04       (kind 2, cont)
    //   inst  0x41  : delta 1, zigzag 2  -> 42          (1 byte, sequential)
    //   load  0x9000: zigzag=0x12000     -> 80 80 12    (kind 0)
    //   store 0x9000: own last-addr state, full delta -> A0 80 12 (kind 1)
    let trace =
        vec![Access::inst(0x40), Access::inst(0x41), Access::load(0x9000), Access::store(0x9000)];
    let mut buf = Vec::new();
    write_mtr(&mut buf, trace.iter().copied()).unwrap();
    let expected: &[u8] = &[
        0x4D, 0x54, 0x52, 0x21, 0x01, // "MTR!", version 1
        0x04, 0x00, 0x00, 0x00, // frame access count
        0x09, 0x00, 0x00, 0x00, // frame payload length
        0xC0, 0x04, // inst 0x40
        0x42, // inst 0x41
        0x80, 0x80, 0x12, // load 0x9000
        0xA0, 0x80, 0x12, // store 0x9000
    ];
    assert_eq!(buf, expected);
    assert_eq!(read_mtr(expected).unwrap(), trace);
}

#[test]
fn frame_state_reset_keeps_frames_independently_decodable() {
    // Delta state resets at frame boundaries, so the second frame of a
    // two-frame file re-encodes absolute positions: decoding must still
    // reproduce the stream exactly.
    let trace: Vec<Access> = (0..10u64).map(|i| Access::inst(0x4000 + i * 3)).collect();
    let bytes = encode(&trace, 4); // frames of 4, 4, 2
    assert_eq!(read_mtr(&bytes[..]).unwrap(), trace);
}
