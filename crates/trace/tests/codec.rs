//! Property and golden tests for the `.mtr` streaming trace codec.
//!
//! The properties: encoding round-trips arbitrary access streams exactly
//! (including duplicates, extreme addresses, and any frame size); *any*
//! truncation of a valid file — even one cutting exactly at a frame
//! boundary — fails with `InvalidData` (the end-of-stream marker makes
//! boundary cuts detectable) and never panics; and any bit-flip or
//! byte-flip corruption is *always* detected by the per-frame CRC-32 and
//! reported as `InvalidData`, never decoded silently.
//!
//! The golden test pins the on-disk byte layout so the format cannot
//! drift silently: files written today must stay readable tomorrow.

use mhe_trace::codec::{read_mtr, write_mtr, TraceWriter};
use mhe_trace::{Access, AccessKind};
use proptest::prelude::*;
use std::io::ErrorKind;

fn access(kind: u8, addr: u64) -> Access {
    let kind = match kind % 3 {
        0 => AccessKind::Load,
        1 => AccessKind::Store,
        _ => AccessKind::Inst,
    };
    Access { kind, addr }
}

/// Addresses mixing locality, wide jumps, and the extremes.
fn addr_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..256,
        0x1000u64..0x2000,
        0u64..u64::MAX,
        Just(0u64),
        Just(u64::MAX),
        Just(u64::MAX - 1),
    ]
}

fn trace_strategy(max_len: usize) -> impl Strategy<Value = Vec<Access>> {
    prop::collection::vec((0u8..3, addr_strategy()).prop_map(|(k, a)| access(k, a)), 0..max_len)
}

/// Encodes with an explicit frame size, so cases cover single-frame,
/// multi-frame, and frame-boundary-aligned traces.
fn encode(trace: &[Access], frame_accesses: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = TraceWriter::with_frame_accesses(&mut buf, frame_accesses).unwrap();
    w.write_all(trace.iter().copied()).unwrap();
    w.finish().unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_is_exact(trace in trace_strategy(2_000), frame in 1usize..300) {
        let bytes = encode(&trace, frame);
        prop_assert_eq!(read_mtr(&bytes[..]).unwrap(), trace);
    }

    #[test]
    fn roundtrip_duplicate_heavy_streams(trace in prop::collection::vec(
        (0u8..3, 0u64..8).prop_map(|(k, a)| access(k, a)),
        0..1_500,
    )) {
        // Tiny address space: mostly zero deltas and repeated values, the
        // best case for the delta coder and a dedup stressor.
        let bytes = encode(&trace, 64);
        prop_assert_eq!(read_mtr(&bytes[..]).unwrap(), trace);
    }

    #[test]
    fn truncation_is_always_detected(trace in trace_strategy(400), frame in 1usize..64, cut_seed in 0u64..u64::MAX) {
        let bytes = encode(&trace, frame);
        let cut = (cut_seed % bytes.len() as u64) as usize;
        // Every strict prefix must fail: a cut inside a frame breaks its
        // CRC or framing, and a cut at a frame boundary — invisible to
        // per-frame checks — removes the end-of-stream marker. No
        // truncation may panic or decode as a shorter-but-valid trace.
        let err = read_mtr(&bytes[..cut]).expect_err("truncated file must not decode");
        prop_assert_eq!(err.kind(), ErrorKind::InvalidData);
    }

    #[test]
    fn corruption_is_always_detected(trace in trace_strategy(400), frame in 1usize..64, pos_seed in 0u64..u64::MAX, flip in 1u16..256) {
        let mut bytes = encode(&trace, frame);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip as u8;
        // Since v2 every frame carries a CRC-32, so any single-byte
        // corruption — in the magic, version, frame header, CRC field, or
        // payload — must surface as InvalidData: never a panic, never an
        // unbounded allocation, and never a silent decode to
        // different-but-plausible data.
        let err = read_mtr(&bytes[..]).expect_err("flipped byte must not decode");
        prop_assert_eq!(err.kind(), ErrorKind::InvalidData);
    }

    #[test]
    fn single_bit_flips_are_always_detected(trace in trace_strategy(200), frame in 1usize..32, pos_seed in 0u64..u64::MAX, bit in 0u32..8) {
        let mut bytes = encode(&trace, frame);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1u8 << bit;
        // CRC-32 detects every single-bit error, so the exact fault the
        // injection harness models (one flipped storage bit) can never
        // round-trip.
        let err = read_mtr(&bytes[..]).expect_err("flipped bit must not decode");
        prop_assert_eq!(err.kind(), ErrorKind::InvalidData);
    }
}

#[test]
fn empty_trace_roundtrips_as_header_and_end_marker() {
    let mut buf = Vec::new();
    write_mtr(&mut buf, std::iter::empty()).unwrap();
    let expected: &[u8] = &[
        0x4D, 0x54, 0x52, 0x21, 0x02, // "MTR!", version 2
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // end marker: count 0, len 0
        0x69, 0xDF, 0x22, 0x65, // end marker CRC-32
    ];
    assert_eq!(buf, expected, "empty trace is exactly header + end marker");
    assert_eq!(read_mtr(&buf[..]).unwrap(), Vec::<Access>::new());
}

#[test]
fn golden_byte_layout_is_pinned() {
    // The written format is a compatibility contract; this test pins it.
    //
    //   magic "MTR!" | version 2
    //   frame: count=4 LE | payload_len=9 LE | crc32 LE
    //   inst  0x40  : zigzag(0x40)=0x80  -> C0 04       (kind 2, cont)
    //   inst  0x41  : delta 1, zigzag 2  -> 42          (1 byte, sequential)
    //   load  0x9000: zigzag=0x12000     -> 80 80 12    (kind 0)
    //   store 0x9000: own last-addr state, full delta -> A0 80 12 (kind 1)
    //
    // The CRC is CRC-32/IEEE over count, payload_len, and payload bytes.
    let trace =
        vec![Access::inst(0x40), Access::inst(0x41), Access::load(0x9000), Access::store(0x9000)];
    let mut buf = Vec::new();
    write_mtr(&mut buf, trace.iter().copied()).unwrap();
    let expected: &[u8] = &[
        0x4D, 0x54, 0x52, 0x21, 0x02, // "MTR!", version 2
        0x04, 0x00, 0x00, 0x00, // frame access count
        0x09, 0x00, 0x00, 0x00, // frame payload length
        0x45, 0x3A, 0x6F, 0x96, // frame CRC-32
        0xC0, 0x04, // inst 0x40
        0x42, // inst 0x41
        0x80, 0x80, 0x12, // load 0x9000
        0xA0, 0x80, 0x12, // store 0x9000
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // end marker: count 0, len 0
        0x69, 0xDF, 0x22, 0x65, // end marker CRC-32
    ];
    assert_eq!(buf, expected);
    assert_eq!(read_mtr(expected).unwrap(), trace);
}

#[test]
fn frame_state_reset_keeps_frames_independently_decodable() {
    // Delta state resets at frame boundaries, so the second frame of a
    // two-frame file re-encodes absolute positions: decoding must still
    // reproduce the stream exactly.
    let trace: Vec<Access> = (0..10u64).map(|i| Access::inst(0x4000 + i * 3)).collect();
    let bytes = encode(&trace, 4); // frames of 4, 4, 2
    assert_eq!(read_mtr(&bytes[..]).unwrap(), trace);
}
