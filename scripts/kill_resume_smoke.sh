#!/usr/bin/env bash
# Kill-and-resume smoke test: SIGKILL a spacewalker run mid-sweep while a
# partial crash-safe checkpoint is on disk, then resume and require the
# frontier to be byte-identical to an uninterrupted run's.
#
# Timing note: the design-space walk is analytic and takes milliseconds,
# while the reference simulation that precedes it takes seconds — so a
# wall-clock SIGKILL always lands inside the simulation, not between two
# checkpoint saves. To still exercise resume-from-partial-state honestly,
# the partial checkpoint is constructed first by walking a prefix of the
# processor list to completion (same benchmark and event count, so the
# cached metric keys are exactly those a kill between processor walks
# would have left behind). The real SIGKILL then proves the atomic
# checkpoint survives a hard kill intact, and the resumed run proves the
# partial cache is reused (nonzero resumed metrics) and reproduces the
# baseline frontier bit for bit. The in-process variant of the
# kill-between-walks case is covered by tests/fault_injection.rs.
#
# Usage: kill_resume_smoke.sh [SPACEWALKER_BIN]
# Defaults to target/release/spacewalker (built by scripts/ci.sh).
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-target/release/spacewalker}"
if [[ ! -x "$BIN" ]]; then
    echo "kill_resume_smoke: $BIN not built" >&2
    exit 1
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/mhe_kill_resume.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

cat > "$WORK/spec.txt" <<'EOF'
[processors]
kinds = 1111 2111 3221 4221 6332

[icache]
sizes_kb = 1 2 4 8 16
assocs = 1 2 4
line_bytes = 16 32 64

[dcache]
sizes_kb = 1 2 4 8
assocs = 1 2
line_bytes = 32

[ucache]
sizes_kb = 16 32 64 128
assocs = 2 4
line_bytes = 64

[eval]
benchmark = unepic
events = 300000
EOF
# The first two processors only: completing this walk leaves the same
# checkpoint a crash after the second per-processor save would have.
sed 's/^kinds = .*/kinds = 1111 2111/' "$WORK/spec.txt" > "$WORK/prefix_spec.txt"

echo "==> uninterrupted baseline"
t0=$(date +%s%N)
"$BIN" walk "$WORK/spec.txt" > "$WORK/baseline.txt" 2> "$WORK/baseline.log"
t1=$(date +%s%N)
BASELINE_MS=$(( (t1 - t0) / 1000000 ))

echo "==> build a partial checkpoint (prefix of the processor list)"
"$BIN" walk "$WORK/prefix_spec.txt" --checkpoint "$WORK/ckpt" \
    > "$WORK/prefix.txt" 2> "$WORK/prefix.log"
[[ -f "$WORK/ckpt/cache.mhec" ]] || {
    echo "kill_resume_smoke: prefix run wrote no checkpoint" >&2
    exit 1
}

# Kill at a third of the measured baseline wall time: the reference
# simulation alone takes most of the run, so this lands mid-run on any
# machine without a timing race.
KILL_MS=$(( BASELINE_MS / 3 ))
(( KILL_MS < 200 )) && KILL_MS=200
echo "==> SIGKILL a resumed run ${KILL_MS}ms in (baseline took ${BASELINE_MS}ms)"
"$BIN" walk "$WORK/spec.txt" --resume "$WORK/ckpt" \
    > "$WORK/killed.txt" 2> "$WORK/killed.log" &
PID=$!
sleep "$(awk "BEGIN{print $KILL_MS/1000}")"
if ! kill -9 "$PID" 2>/dev/null; then
    echo "kill_resume_smoke: run finished in under ${KILL_MS}ms; SIGKILL never landed" >&2
    exit 1
fi
wait "$PID" 2>/dev/null || true

# The atomic save protocol (tmp sibling + fsync + rename) must leave the
# checkpoint valid and free of temp droppings after a hard kill.
[[ -f "$WORK/ckpt/cache.mhec" ]] || {
    echo "kill_resume_smoke: checkpoint vanished after SIGKILL" >&2
    exit 1
}
if compgen -G "$WORK/ckpt/cache.mhec.tmp" > /dev/null; then
    echo "kill_resume_smoke: SIGKILL left a temp file in the checkpoint dir" >&2
    exit 1
fi

echo "==> resume from the surviving checkpoint"
"$BIN" walk "$WORK/spec.txt" --resume "$WORK/ckpt" \
    > "$WORK/resumed.txt" 2> "$WORK/resumed.log"
grep -Eq "resumed [1-9][0-9]* cached metrics from checkpoint" "$WORK/resumed.log" || {
    echo "kill_resume_smoke: resume loaded no cached metrics" >&2
    cat "$WORK/resumed.log" >&2
    exit 1
}

echo "==> diff frontiers"
if ! diff -u "$WORK/baseline.txt" "$WORK/resumed.txt"; then
    echo "kill_resume_smoke: resumed frontier differs from baseline" >&2
    exit 1
fi

echo "==> kill_resume_smoke: SIGKILL survived, resumed frontier byte-identical"
