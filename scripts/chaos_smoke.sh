#!/usr/bin/env bash
# Chaos smoke test: survivability of the daemon and the fleet as *real
# processes* — no in-process shortcuts.
#
# Three drills, each ending in a byte-identity check against the batch
# frontier:
#
#   1. Auth gate: a tokened daemon turns away tokenless and wrong-token
#      clients with the documented exit code 6, then serves the tokened
#      client the exact batch bytes.
#   2. Disconnect cancellation: a client is SIGKILLed mid-request against
#      a daemon with a single admission slot; the abandoned sweep must be
#      cancelled and its slot freed, or the follow-up client could never
#      be admitted.
#   3. Coordinator handoff: a doomed worker (--die-after-points) leaves
#      the sweep provably incomplete, the coordinator is SIGKILLed
#      mid-sweep, a standby rebinds the same port with --resume over the
#      shared checkpoint, and a fresh worker finishes the sweep.
#
# Usage: chaos_smoke.sh [SPACEWALKER_BIN] [SERVER_BIN]
# Defaults to the release binaries (built by scripts/ci.sh).
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-target/release/spacewalker}"
SERVER="${2:-target/release/mhe-server}"
for b in "$BIN" "$SERVER"; do
    if [[ ! -x "$b" ]]; then
        echo "chaos_smoke: $b not built" >&2
        exit 1
    fi
done

WORK="$(mktemp -d "${TMPDIR:-/tmp}/mhe_chaos_smoke.XXXXXX")"
DAEMON_PID=""
FLEET_PID=""
WORKER_PID=""
VICTIM_PID=""
cleanup() {
    for pid in "$DAEMON_PID" "$FLEET_PID" "$WORKER_PID" "$VICTIM_PID"; do
        [[ -n "$pid" ]] && kill -9 "$pid" 2>/dev/null
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

cat > "$WORK/spec.txt" <<'EOF'
[processors]
kinds = 1111 3221

[icache]
sizes_kb = 1 4
assocs = 1 2
line_bytes = 32
ports = 1

[dcache]
sizes_kb = 1 4
assocs = 1
line_bytes = 32
ports = 1

[ucache]
sizes_kb = 16 64
assocs = 2
line_bytes = 64
ports = 1

[eval]
benchmark = unepic
events = 60000
l1_miss = 10
l2_miss = 50
EOF

wait_port() { # FILE PID NAME
    local file="$1" pid="$2" name="$3"
    for _ in $(seq 1 100); do
        [[ -s "$file" ]] && return 0
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "chaos_smoke: $name died during startup" >&2
            return 1
        fi
        sleep 0.1
    done
    echo "chaos_smoke: $name never wrote its port file" >&2
    return 1
}

echo "==> single-process batch baseline"
"$BIN" walk "$WORK/spec.txt" > "$WORK/batch.txt" 2> "$WORK/batch.log"

# ---------------------------------------------------------------- auth
echo "==> drill 1: auth gate (bad tokens out with exit 6, good token identical)"
"$SERVER" --port-file "$WORK/auth_port" --auth-token hunter2 \
    > /dev/null 2> "$WORK/auth_daemon.log" &
DAEMON_PID=$!
wait_port "$WORK/auth_port" "$DAEMON_PID" "tokened daemon"
ADDR="$(head -n1 "$WORK/auth_port")"

rc=0
"$BIN" connect "$ADDR" "$WORK/spec.txt" > /dev/null 2> "$WORK/no_token.log" || rc=$?
[[ "$rc" -eq 6 ]] || {
    echo "chaos_smoke: tokenless connect exited $rc (want unauthorized 6)" >&2
    cat "$WORK/no_token.log" >&2
    exit 1
}
rc=0
"$BIN" connect "$ADDR" "$WORK/spec.txt" --auth-token swordfish \
    > /dev/null 2> "$WORK/bad_token.log" || rc=$?
[[ "$rc" -eq 6 ]] || {
    echo "chaos_smoke: wrong-token connect exited $rc (want unauthorized 6)" >&2
    cat "$WORK/bad_token.log" >&2
    exit 1
}
"$BIN" connect "$ADDR" "$WORK/spec.txt" --auth-token hunter2 \
    > "$WORK/authed.txt" 2> "$WORK/good_token.log"
diff -u "$WORK/batch.txt" "$WORK/authed.txt" || {
    echo "chaos_smoke: tokened frontier differs from batch" >&2
    exit 1
}
kill -TERM "$DAEMON_PID"
rc=0
wait "$DAEMON_PID" || rc=$?
DAEMON_PID=""
[[ "$rc" -eq 0 ]] || {
    echo "chaos_smoke: tokened daemon drain exited $rc" >&2
    exit 1
}

# ------------------------------------------- disconnect cancellation
echo "==> drill 2: SIGKILL a client mid-request; the slot must free"
"$SERVER" --port-file "$WORK/cancel_port" --inflight 1 --queue 0 \
    > /dev/null 2> "$WORK/cancel_daemon.log" &
DAEMON_PID=$!
wait_port "$WORK/cancel_port" "$DAEMON_PID" "single-slot daemon"
ADDR="$(head -n1 "$WORK/cancel_port")"

# The victim gets a much heavier spec (still valid, answer irrelevant)
# so the SIGKILL reliably lands while its sweep holds the only slot.
sed 's/^events = .*/events = 2000000/' "$WORK/spec.txt" > "$WORK/victim_spec.txt"
"$BIN" connect "$ADDR" "$WORK/victim_spec.txt" > /dev/null 2>&1 &
VICTIM_PID=$!
sleep 0.5
kill -9 "$VICTIM_PID" 2>/dev/null || {
    echo "chaos_smoke: victim client finished before the kill" >&2
    exit 1
}
wait "$VICTIM_PID" 2>/dev/null || true
VICTIM_PID=""

# With one slot and no queue, this succeeds only once the abandoned
# sweep is cancelled and reaped — a leaked slot fails every attempt.
ok=""
for _ in $(seq 1 60); do
    if "$BIN" connect "$ADDR" "$WORK/spec.txt" \
        > "$WORK/after_kill.txt" 2> "$WORK/after_kill.log"; then
        ok=1
        break
    fi
    sleep 1
done
[[ -n "$ok" ]] || {
    echo "chaos_smoke: the killed client's admission slot never freed" >&2
    cat "$WORK/after_kill.log" >&2
    exit 1
}
diff -u "$WORK/batch.txt" "$WORK/after_kill.txt" || {
    echo "chaos_smoke: post-kill frontier differs from batch" >&2
    exit 1
}
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || true
DAEMON_PID=""

# ------------------------------------------------ coordinator handoff
echo "==> drill 3: SIGKILL the coordinator; a standby resumes on the same port"
"$BIN" fleet "$WORK/spec.txt" --workers 0 --bind 127.0.0.1:0 \
    --port-file "$WORK/fleet_port" --shards 8 --checkpoint "$WORK/ckpt" \
    > /dev/null 2> "$WORK/fleet1.log" &
FLEET_PID=$!
wait_port "$WORK/fleet_port" "$FLEET_PID" "primary coordinator"
ADDR="$(head -n1 "$WORK/fleet_port")"
echo "    coordinating on $ADDR"

# A doomed worker delivers 6 of the sweep's 16 points and dies, so the
# primary is provably mid-sweep when the SIGKILL lands — no timer race
# against a sweep that finishes in about a second.
"$BIN" worker "$ADDR" --die-after-points 6 2> "$WORK/worker1.log" || true

# Kill the primary once it has checkpointed the delivered points.
for _ in $(seq 1 300); do
    if compgen -G "$WORK/ckpt/*" > /dev/null; then break; fi
    if ! kill -0 "$FLEET_PID" 2>/dev/null; then
        echo "chaos_smoke: primary coordinator exited before the kill" >&2
        cat "$WORK/fleet1.log" >&2
        exit 1
    fi
    sleep 0.1
done
compgen -G "$WORK/ckpt/*" > /dev/null || {
    echo "chaos_smoke: primary coordinator never checkpointed" >&2
    exit 1
}
kill -9 "$FLEET_PID"
wait "$FLEET_PID" 2>/dev/null || true
FLEET_PID=""
echo "    primary killed; standby rebinding $ADDR"

"$BIN" fleet "$WORK/spec.txt" --workers 0 --bind "$ADDR" --shards 8 \
    --resume "$WORK/ckpt" > "$WORK/fleet2.txt" 2> "$WORK/fleet2.log" &
FLEET_PID=$!

# A fresh worker finishes the sweep against the standby; --redials covers
# its dial racing the standby's accept loop.
"$BIN" worker "$ADDR" --redials 60 2> "$WORK/worker2.log" &
WORKER_PID=$!

rc=0
wait "$FLEET_PID" || rc=$?
FLEET_PID=""
[[ "$rc" -eq 0 ]] || {
    echo "chaos_smoke: standby coordinator exited $rc" >&2
    cat "$WORK/fleet2.log" >&2
    exit 1
}
rc=0
wait "$WORKER_PID" || rc=$?
WORKER_PID=""
[[ "$rc" -eq 0 ]] || {
    echo "chaos_smoke: the fresh worker exited $rc" >&2
    cat "$WORK/worker2.log" >&2
    exit 1
}

echo "==> post-handoff frontier must be byte-identical to batch"
diff -u "$WORK/batch.txt" "$WORK/fleet2.txt" || {
    echo "chaos_smoke: post-handoff frontier differs from batch" >&2
    exit 1
}

echo "==> chaos_smoke: auth gate, disconnect cancellation, and coordinator handoff all held"
