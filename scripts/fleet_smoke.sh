#!/usr/bin/env bash
# Fleet smoke test: run a distributed sweep with three separate local
# worker processes — one of which dies mid-sweep — and require the merged
# frontier to be byte-identical to the single-process batch run.
#
# Determinism note: the kill is injected with --die-after-points rather
# than a wall-clock SIGKILL so it always lands mid-shard (the worker
# flushes a partial point batch, slams the socket, and exits with the
# worker-failure code 4). The coordinator must steal the dead worker's
# lease, hand its already-streamed points back as prefill, and finish the
# sweep with the remaining workers — no duplicate deliveries, same bytes.
#
# Usage: fleet_smoke.sh [SPACEWALKER_BIN]
# Defaults to target/release/spacewalker (built by scripts/ci.sh).
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-target/release/spacewalker}"
if [[ ! -x "$BIN" ]]; then
    echo "fleet_smoke: $BIN not built" >&2
    exit 1
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/mhe_fleet_smoke.XXXXXX")"
FLEET_PID=""
WORKER2_PID=""
cleanup() {
    [[ -n "$FLEET_PID" ]] && kill -9 "$FLEET_PID" 2>/dev/null
    [[ -n "$WORKER2_PID" ]] && kill -9 "$WORKER2_PID" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

cat > "$WORK/spec.txt" <<'EOF'
[processors]
kinds = 1111 3221

[icache]
sizes_kb = 1 4
assocs = 1 2
line_bytes = 32
ports = 1

[dcache]
sizes_kb = 1 4
assocs = 1
line_bytes = 32
ports = 1

[ucache]
sizes_kb = 16 64
assocs = 2
line_bytes = 64
ports = 1

[eval]
benchmark = unepic
events = 60000
l1_miss = 10
l2_miss = 50
EOF

echo "==> single-process batch baseline"
"$BIN" walk "$WORK/spec.txt" > "$WORK/batch.txt" 2> "$WORK/batch.log"

echo "==> start fleet coordinator (workers attach as separate processes)"
"$BIN" fleet "$WORK/spec.txt" --workers 0 --bind 127.0.0.1:0 \
    --port-file "$WORK/port" --shards 8 \
    > "$WORK/fleet.txt" 2> "$WORK/fleet.log" &
FLEET_PID=$!
for _ in $(seq 1 100); do
    [[ -s "$WORK/port" ]] && break
    if ! kill -0 "$FLEET_PID" 2>/dev/null; then
        echo "fleet_smoke: coordinator died during startup" >&2
        cat "$WORK/fleet.log" >&2
        exit 1
    fi
    sleep 0.1
done
[[ -s "$WORK/port" ]] || {
    echo "fleet_smoke: coordinator never wrote its port file" >&2
    exit 1
}
ADDR="$(head -n1 "$WORK/port")"
echo "    coordinating on $ADDR"

echo "==> worker 1 attaches and dies mid-sweep (injected kill after 5 points)"
rc=0
"$BIN" worker "$ADDR" --die-after-points 5 2> "$WORK/worker1.log" || rc=$?
[[ "$rc" -eq 4 ]] || {
    echo "fleet_smoke: the dying worker exited $rc (want worker-failure 4)" >&2
    cat "$WORK/worker1.log" >&2
    exit 1
}

echo "==> workers 2 and 3 attach and finish the sweep"
"$BIN" worker "$ADDR" 2> "$WORK/worker2.log" &
WORKER2_PID=$!
"$BIN" worker "$ADDR" 2> "$WORK/worker3.log"
wait "$WORKER2_PID"
WORKER2_PID=""

rc=0
wait "$FLEET_PID" || rc=$?
FLEET_PID=""
[[ "$rc" -eq 0 ]] || {
    echo "fleet_smoke: fleet run exited $rc" >&2
    cat "$WORK/fleet.log" >&2
    exit 1
}

echo "==> merged frontier must be byte-identical to batch"
diff -u "$WORK/batch.txt" "$WORK/fleet.txt" || {
    echo "fleet_smoke: fleet frontier differs from batch" >&2
    exit 1
}

echo "==> the dead worker's lease must be stolen, with no duplicate deliveries"
SUMMARY="$(grep -E "^fleet: [0-9]+ workers," "$WORK/fleet.log" || true)"
[[ -n "$SUMMARY" ]] || {
    echo "fleet_smoke: no fleet summary line in the log" >&2
    cat "$WORK/fleet.log" >&2
    exit 1
}
STEALS="$(sed -E 's/.* ([0-9]+) steals.*/\1/' <<< "$SUMMARY")"
DUPES="$(sed -E 's/.* ([0-9]+) duplicate deliveries.*/\1/' <<< "$SUMMARY")"
[[ "$STEALS" -ge 1 ]] || {
    echo "fleet_smoke: expected >=1 steal after the worker death: $SUMMARY" >&2
    exit 1
}
[[ "$DUPES" -eq 0 ]] || {
    echo "fleet_smoke: prefill failed to prevent duplicate deliveries: $SUMMARY" >&2
    exit 1
}

echo "==> fleet_smoke: merged frontier byte-identical after a worker kill ($SUMMARY)"
