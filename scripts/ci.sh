#!/usr/bin/env bash
# Tier-1 gate: everything must pass from a clean checkout, offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> spacewalk_speedup smoke (walk throughput + determinism)"
MHE_EVENTS=20000 cargo run --release -q -p mhe-bench --bin spacewalk_speedup

echo "==> obs_overhead (disabled-probe budget: <2% on trace replay)"
MHE_EVENTS=60000 cargo run --release -q -p mhe-bench --bin obs_overhead

echo "==> replacement-policy differential suite (budget: 300 s wall)"
timeout 300 cargo test -q --release -p mhe --test policy_differential

echo "==> sampling accuracy harness (full matrix, budget: 300 s wall)"
timeout 300 cargo test -q --release -p mhe --test sampling_accuracy

echo "==> daemon differential suite (4 concurrent clients vs batch bytes, budget: 300 s wall)"
timeout 300 cargo test -q --release -p mhe --test daemon_service

echo "==> sampling_speedup (>=10x grid simulation at --sample defaults, results/BENCH_7.json)"
MHE_EVENTS=2000000 cargo run --release -q -p mhe-bench --bin sampling_speedup

echo "==> policy_matrix (per-policy accesses/s, engines cross-checked)"
MHE_EVENTS=60000 cargo run --release -q -p mhe-bench --bin policy_matrix

echo "==> fault-injection suite (panic isolation, corrupt input, checkpoint resume)"
cargo test -q -p mhe --test fault_injection

echo "==> bench_snapshot (throughput floors, fleet speedup, eviction/cancel costs, results/BENCH_{8,9,10}.json)"
cargo run --release -q -p mhe-bench --bin bench_snapshot

echo "==> kill-and-resume smoke (SIGKILL mid-run, resume, diff frontiers)"
./scripts/kill_resume_smoke.sh

echo "==> daemon smoke (serve/connect walk, warm repeat, SIGTERM drain; budget: 120 s)"
timeout 120 ./scripts/daemon_smoke.sh

echo "==> fleet smoke (3 worker processes, one killed mid-sweep, frontier byte-identical; budget: 300 s)"
timeout 300 ./scripts/fleet_smoke.sh

echo "==> distributed walk differential suite (1/2/4 workers vs batch bytes, steal, dead coordinator; budget: 300 s wall)"
timeout 300 cargo test -q --release -p mhe --test distributed_walk

echo "==> survivable-service suite (session TTL/LRU bounds, cancellation, auth, persistence; budget: 300 s wall)"
timeout 300 cargo test -q --release -p mhe --test survivable_service

echo "==> network chaos suite (frame faults, seeded chaos, fleet handoff under faults; budget: 300 s wall)"
timeout 300 cargo test -q --release -p mhe --test chaos_net

echo "==> chaos smoke (auth gate, client SIGKILL mid-request, coordinator SIGKILL + standby resume; budget: 300 s)"
timeout 300 ./scripts/chaos_smoke.sh

echo "==> ci.sh: all checks passed"
