#!/usr/bin/env bash
# Tier-1 gate: everything must pass from a clean checkout, offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ci.sh: all checks passed"
