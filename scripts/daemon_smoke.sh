#!/usr/bin/env bash
# Daemon smoke test: start mhe-server on an ephemeral port, run a short
# heuristic walk through `spacewalker connect`, and require the served
# frontier to be byte-identical to the in-process batch run — cold, on a
# warm repeat, and on a daemon restarted with fault injection + retries.
# SIGTERM must drain each daemon to a clean exit 0.
#
# Usage: daemon_smoke.sh [SPACEWALKER_BIN [SERVER_BIN]]
# Defaults to target/release/{spacewalker,mhe-server} (built by ci.sh).
set -euo pipefail
cd "$(dirname "$0")/.."

WALKER="${1:-target/release/spacewalker}"
SERVER="${2:-target/release/mhe-server}"
for bin in "$WALKER" "$SERVER"; do
    if [[ ! -x "$bin" ]]; then
        echo "daemon_smoke: $bin not built" >&2
        exit 1
    fi
done

WORK="$(mktemp -d "${TMPDIR:-/tmp}/mhe_daemon_smoke.XXXXXX")"
SERVER_PID=""
cleanup() {
    [[ -n "$SERVER_PID" ]] && kill -9 "$SERVER_PID" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

cat > "$WORK/spec.txt" <<'EOF'
[processors]
kinds = 1111 3221

[icache]
sizes_kb = 1 4
assocs = 1 2
line_bytes = 32
ports = 1

[dcache]
sizes_kb = 1 4
assocs = 1
line_bytes = 32
ports = 1

[ucache]
sizes_kb = 16 64
assocs = 2
line_bytes = 64
ports = 1

[eval]
benchmark = unepic
events = 60000
l1_miss = 10
l2_miss = 50
EOF

# Starts a daemon on an ephemeral loopback port and waits for its
# port-file; the resolved address lands in $ADDR, the pid in $SERVER_PID.
# Extra NAME=VALUE arguments become the daemon's environment.
start_daemon() {
    rm -f "$WORK/port"
    env "$@" "$SERVER" --addr 127.0.0.1:0 --port-file "$WORK/port" \
        >> "$WORK/server.log" 2>&1 &
    SERVER_PID=$!
    for _ in $(seq 1 100); do
        [[ -s "$WORK/port" ]] && break
        if ! kill -0 "$SERVER_PID" 2>/dev/null; then
            echo "daemon_smoke: server died during startup" >&2
            cat "$WORK/server.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    [[ -s "$WORK/port" ]] || {
        echo "daemon_smoke: server never wrote its port file" >&2
        exit 1
    }
    ADDR="$(head -n1 "$WORK/port")"
}

# SIGTERMs the daemon in $SERVER_PID and requires a clean exit 0 (the
# graceful drain: stop accepting, finish live frames, join, return).
stop_daemon() {
    kill -TERM "$SERVER_PID"
    local rc=0
    wait "$SERVER_PID" || rc=$?
    SERVER_PID=""
    if [[ "$rc" -ne 0 ]]; then
        echo "daemon_smoke: SIGTERM drain exited $rc (want 0)" >&2
        cat "$WORK/server.log" >&2
        exit 1
    fi
}

echo "==> in-process batch baseline (heuristic walk)"
"$WALKER" walk "$WORK/spec.txt" --heuristic > "$WORK/batch.txt" 2> "$WORK/batch.log"

echo "==> start daemon on an ephemeral port"
start_daemon
echo "    listening on $ADDR"

echo "==> served walk via --connect (cold daemon)"
"$WALKER" connect "$ADDR" "$WORK/spec.txt" --heuristic \
    > "$WORK/served.txt" 2> "$WORK/served.log"
diff -u "$WORK/batch.txt" "$WORK/served.txt" || {
    echo "daemon_smoke: cold served frontier differs from batch" >&2
    exit 1
}

echo "==> served walk via --connect (warm repeat)"
"$WALKER" connect "$ADDR" "$WORK/spec.txt" --heuristic \
    > "$WORK/warm.txt" 2> "$WORK/warm.log"
diff -u "$WORK/batch.txt" "$WORK/warm.txt" || {
    echo "daemon_smoke: warm served frontier differs from batch" >&2
    exit 1
}
grep -Eq "cache [1-9][0-9]* hits" "$WORK/warm.log" || {
    echo "daemon_smoke: warm repeat reported no cache hits" >&2
    cat "$WORK/warm.log" >&2
    exit 1
}

echo "==> SIGTERM graceful drain"
stop_daemon
if "$WALKER" connect "$ADDR" "$WORK/spec.txt" --heuristic \
    > /dev/null 2> "$WORK/refused.log"; then
    echo "daemon_smoke: a drained daemon still served a walk" >&2
    exit 1
else
    rc=$?
    [[ "$rc" -eq 5 ]] || {
        echo "daemon_smoke: connect to a dead daemon exited $rc (want 5)" >&2
        exit 1
    }
fi

echo "==> restart with fault injection + retries; served walk must still match"
start_daemon MHE_FAULT_PLAN=panic@0 MHE_RETRIES=2
"$WALKER" connect "$ADDR" "$WORK/spec.txt" --heuristic \
    > "$WORK/faulted.txt" 2> "$WORK/faulted.log"
diff -u "$WORK/batch.txt" "$WORK/faulted.txt" || {
    echo "daemon_smoke: frontier under injected panic + retry differs from batch" >&2
    exit 1
}

echo "==> SIGTERM graceful drain (faulted daemon)"
stop_daemon

echo "==> daemon_smoke: served frontiers byte-identical; drains clean"
