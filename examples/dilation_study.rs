//! Dilation study: sweep the dilation coefficient and compare the model's
//! estimates against simulation of explicitly dilated traces (a compact
//! version of the paper's Figure 6).
//!
//! Run with: `cargo run --release --example dilation_study`

use mhe::core::evaluator::dilated_misses;
use mhe::prelude::*;

fn main() -> Result<(), MheError> {
    let benchmark = Benchmark::Rasta;
    let icache = CacheConfig::from_bytes(1024, 1, 32);
    let ucache = CacheConfig::from_bytes(16 * 1024, 2, 64);
    let config = EvalConfig { events: 120_000, ..EvalConfig::default() };
    let eval = ReferenceEvaluation::for_benchmark(
        benchmark,
        &ProcessorKind::P1111.mdes(),
        config,
        &[icache],
        &[],
        &[ucache],
    );

    println!("benchmark: {benchmark}");
    println!("I$: {icache}   U$: {ucache}\n");
    println!(
        "{:>5} {:>14} {:>14} {:>8}   {:>14} {:>14} {:>8}",
        "d", "I$ dilated", "I$ estimated", "err", "U$ dilated", "U$ estimated", "err"
    );
    let mut d = 1.0;
    while d <= 3.5 + 1e-9 {
        let i_est = eval.estimate_icache_misses(icache, d)?;
        let i_sim = dilated_misses(
            eval.program(),
            eval.reference(),
            d,
            eval.config(),
            StreamKind::Instruction,
            icache,
        );
        let u_est = eval.estimate_ucache_misses(ucache, d)?;
        let u_sim = dilated_misses(
            eval.program(),
            eval.reference(),
            d,
            eval.config(),
            StreamKind::Unified,
            ucache,
        );
        println!(
            "{:>5.2} {:>14} {:>14.0} {:>7.1}%   {:>14} {:>14.0} {:>7.1}%",
            d,
            i_sim,
            i_est,
            100.0 * (i_est - i_sim as f64) / i_sim as f64,
            u_sim,
            u_est,
            100.0 * (u_est - u_sim as f64) / u_sim as f64,
        );
        d += 0.5;
    }
    println!("\n'dilated' columns are simulations of explicitly dilated traces;");
    println!("'estimated' columns cost no simulation at all.");
    Ok(())
}
