//! Miss anatomy: where do a benchmark's instruction-cache misses come
//! from, and when is the dilation model's steady-state assumption safe?
//!
//! The AHH model keeps only the steady-state *interference* term,
//! discarding start-up and non-stationary misses. This example measures
//! the compulsory/capacity/conflict decomposition across cache sizes
//! (three-C taxonomy), plus the Mattson stack profile that gives every
//! fully-associative capacity in one pass — the two analyses that tell you
//! whether that simplification is justified for a workload.
//!
//! Run with: `cargo run --release --example miss_anatomy`

use mhe::cache::{classify_misses, StackSim};
use mhe::prelude::*;
use mhe::vliw::compile::Compiled;

fn main() {
    let benchmark = Benchmark::Gcc;
    let program = benchmark.generate();
    let compiled = Compiled::build(&program, &ProcessorKind::P1111.mdes(), None);
    let events = 120_000;
    let trace: Vec<u64> = TraceGenerator::new(&program, &compiled, 42)
        .with_event_limit(events)
        .stream(StreamKind::Instruction)
        .map(|a| a.addr)
        .collect();
    println!("benchmark: {benchmark}; instruction trace of {} references\n", trace.len());

    // --- Three-C decomposition across direct-mapped cache sizes. ---
    println!("## Miss decomposition (direct-mapped, 32 B lines)\n");
    println!(
        "{:>8} {:>10} {:>12} {:>10} {:>10} {:>14}",
        "size", "misses", "compulsory", "capacity", "conflict", "conflict share"
    );
    for kb in [1u64, 2, 4, 8, 16, 32] {
        let cfg = CacheConfig::from_bytes(kb * 1024, 1, 32);
        let b = classify_misses(cfg, trace.iter().copied());
        println!(
            "{:>6}KB {:>10} {:>12} {:>10} {:>10} {:>13.1}%",
            kb,
            b.total(),
            b.compulsory,
            b.capacity,
            b.conflict,
            100.0 * b.conflict_share()
        );
    }

    // --- Stack profile: every fully-associative capacity at once. ---
    let mut stack = StackSim::new(8);
    stack.run(trace.iter().copied());
    println!("\n## Fully-associative miss-rate curve (one stack pass)\n");
    println!("{:>10} {:>12} {:>10}", "capacity", "misses", "rate");
    for lines in [8u32, 16, 32, 64, 128, 256, 512, 1024] {
        let m = stack.misses(lines);
        println!("{:>7} ln {:>12} {:>9.2}%", lines, m, 100.0 * m as f64 / stack.accesses() as f64);
    }
    for target in [0.05, 0.02, 0.01] {
        match stack.capacity_for_miss_rate(target) {
            Some(lines) => println!(
                "smallest fully-associative cache with miss rate <= {:.0}%: {} lines ({} KB)",
                target * 100.0,
                lines,
                lines * 32 / 1024
            ),
            None => println!(
                "no capacity reaches {:.0}% (compulsory floor {:.2}%)",
                target * 100.0,
                100.0 * stack.cold_misses() as f64 / stack.accesses() as f64
            ),
        }
    }
    println!("\nWhere the conflict share is high and compulsory misses are few, the");
    println!("paper's steady-state interference model is on safe ground.");
}
