//! Design-space exploration: find the cost/performance Pareto frontier of
//! a joint processor × memory-hierarchy space for one application.
//!
//! This is the paper's headline use case: the spacewalker evaluates
//! thousands of combinations, but all cache simulation happened once, on
//! the reference processor's traces.
//!
//! Run with: `cargo run --release --example design_space_walk`

use mhe::prelude::*;
use mhe::spacewalk::walker;

fn main() -> Result<(), MheError> {
    let benchmark = Benchmark::PgpDecode;
    let space = SystemSpace::paper_default();
    println!("benchmark: {benchmark}");
    println!(
        "design space: {} processors x {} I$ x {} D$ x {} U$ = {} systems\n",
        space.processors.len(),
        space.icache.enumerate().len(),
        space.dcache.enumerate().len(),
        space.ucache.enumerate().len(),
        space.combinations(),
    );

    let eval = walker::prepare_evaluation(
        benchmark.generate(),
        &ProcessorKind::P1111.mdes(),
        EvalConfig::builder().events(150_000).build()?,
        &space,
    );

    let db = EvaluationCache::new();
    let frontier = walker::walk_system(&eval, &space, Penalties::default(), &db)?;

    println!("Pareto-optimal systems (cost ascending):");
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>12} {:>14}",
        "proc", "I$ B", "D$ B", "U$ B", "area", "cycles"
    );
    for p in frontier.points() {
        let m = &p.design.memory;
        println!(
            "{:<6} {:>10} {:>10} {:>10} {:>12.0} {:>14.0}",
            p.design.processor.name,
            m.icache.config.size_bytes(),
            m.dcache.config.size_bytes(),
            m.ucache.config.size_bytes(),
            p.cost,
            p.time,
        );
    }
    let (hits, misses) = db.stats();
    println!(
        "\n{} frontier designs out of {} combinations; evaluation cache: {} hits / {} computes",
        frontier.len(),
        space.combinations(),
        hits,
        misses
    );
    Ok(())
}
