//! Accelerator study: can a narrow VLIW plus a systolic array beat a wide
//! VLIW?
//!
//! The paper's design space (Figure 1) includes an optional
//! non-programmable systolic array next to the VLIW core. This example
//! evaluates processor ± accelerator combinations on an FP-heavy workload
//! — the classic embedded tradeoff the PICO project targeted: a cheap
//! narrow core with a kernel accelerator versus an expensive wide core.
//!
//! Run with: `cargo run --release --example accelerator_study`

use mhe::core::accel::{accelerated_cycles, Accelerator, KernelMap};
use mhe::core::system::processor_cycles;
use mhe::prelude::*;
use mhe::vliw::compile::Compiled;
use mhe::workload::BlockFrequencies;

fn main() {
    let benchmark = Benchmark::Rasta;
    let program = benchmark.generate();
    let seed = 5;
    let events = 150_000;
    let freq = BlockFrequencies::profile(&program, seed, 200_000);
    let accel = Accelerator::default();
    let kernels = KernelMap::select(&program, &freq, &accel);

    println!("benchmark: {benchmark} (FP-heavy)");
    println!(
        "accelerator: {} ops/cycle, {} kernel slots, area {:.0}; selected kernels: {:?}\n",
        accel.throughput_ops,
        accel.kernel_slots,
        accel.cost,
        kernels.kernels()
    );
    println!(
        "{:<8} {:>12} {:>14} {:>10} {:>12} {:>10}",
        "proc", "cycles", "cycles+accel", "speedup", "area", "area+accel"
    );
    let mut best: Option<(String, f64, f64)> = None;
    for kind in ProcessorKind::ALL {
        let mdes = kind.mdes();
        let compiled = Compiled::build(&program, &mdes, Some(&freq));
        let base = processor_cycles(&program, &compiled, seed, events);
        let with = accelerated_cycles(&program, &compiled, &kernels, &accel, seed, events);
        println!(
            "{:<8} {:>12} {:>14} {:>9.2}x {:>12.1} {:>10.1}",
            kind.name(),
            base,
            with,
            base as f64 / with as f64,
            mdes.cost(),
            mdes.cost() + accel.cost
        );
        for (cycles, cost, label) in [
            (base as f64, mdes.cost(), kind.name().to_string()),
            (with as f64, mdes.cost() + accel.cost, format!("{}+accel", kind.name())),
        ] {
            // "Best" = lowest cycles·cost product, a crude efficiency score.
            let score = cycles * cost;
            if best.as_ref().is_none_or(|(_, _, s)| score < *s) {
                best = Some((label, cycles, score));
            }
        }
    }
    if let Some((label, cycles, _)) = best {
        println!("\nbest cycles x area efficiency: {label} ({cycles:.0} cycles)");
    }
    println!("(memory stalls are identical across these options — the array shares the");
    println!(" cache hierarchy — so compute cycles and area are the whole comparison)");
}
