//! Compiler-tradeoff study: what does a code-expanding optimization cost in
//! the memory hierarchy?
//!
//! The paper's introduction notes that "code specialization techniques,
//! such as inlining or loop unrolling may improve processor performance,
//! but at the expense of instruction cache performance", and that the
//! dilation model quantifies this "in a simulation-efficient manner". This
//! example models a family of such optimizations as (speedup, code-growth)
//! points and uses the dilation model to pick the best one per instruction
//! cache — no re-simulation per variant. Following the paper's intro, the
//! figure of merit is compute time plus *instruction-side* stalls (L1I
//! misses, plus the unified-cache miss growth caused by the dilated
//! instruction stream).
//!
//! Run with: `cargo run --release --example compiler_tradeoff`

use mhe::core::system::processor_cycles;
use mhe::prelude::*;

/// A code-expanding optimization variant: the compute speedup it buys and
/// the text growth it costs.
struct Variant {
    name: &'static str,
    speedup: f64,
    code_growth: f64,
}

fn main() -> Result<(), MheError> {
    let variants = [
        Variant { name: "baseline", speedup: 1.00, code_growth: 1.00 },
        Variant { name: "unroll x2", speedup: 1.12, code_growth: 1.25 },
        Variant { name: "unroll x4", speedup: 1.22, code_growth: 1.70 },
        Variant { name: "aggressive inlining", speedup: 1.30, code_growth: 2.20 },
        Variant { name: "unroll x4 + inline", speedup: 1.38, code_growth: 3.00 },
    ];
    let benchmark = Benchmark::Ghostscript;
    let caches = [
        CacheConfig::from_bytes(1024, 1, 32),
        CacheConfig::from_bytes(4 * 1024, 1, 32),
        CacheConfig::from_bytes(16 * 1024, 2, 32),
    ];
    let ucache = CacheConfig::from_bytes(128 * 1024, 4, 64);
    let penalties = Penalties::default();

    let config = EvalConfig { events: 150_000, ..EvalConfig::default() };
    let eval = ReferenceEvaluation::for_benchmark(
        benchmark,
        &ProcessorKind::P1111.mdes(),
        config,
        &caches,
        &[],
        &[ucache],
    );
    let base_cycles =
        processor_cycles(eval.program(), eval.reference(), config.seed, config.events) as f64;
    let base_u = eval.ucache_misses_measured(ucache).unwrap() as f64;

    println!(
        "benchmark: {benchmark}; L1 miss = {} cy, L2 miss = {} cy; U$: {ucache}\n",
        penalties.l1_miss, penalties.l2_miss
    );
    let mut winners = Vec::new();
    for icache in caches {
        println!("--- instruction cache: {icache} ---");
        println!(
            "{:<22} {:>9} {:>12} {:>12} {:>14} {:>12}",
            "variant", "compute", "I$ misses", "U$ growth", "inst cycles", "speedup"
        );
        let mut best = ("", f64::INFINITY);
        let mut base_total = f64::NAN;
        for v in &variants {
            // Code growth acts exactly like processor dilation: every block
            // stretches by the growth factor.
            let i_misses = eval.estimate_icache_misses(icache, v.code_growth)?;
            let u_growth = (eval.estimate_ucache_misses(ucache, v.code_growth)? - base_u).max(0.0);
            let compute = base_cycles / v.speedup;
            let total =
                compute + i_misses * penalties.l1_miss as f64 + u_growth * penalties.l2_miss as f64;
            if v.code_growth == 1.0 {
                base_total = total;
            }
            if total < best.1 {
                best = (v.name, total);
            }
            println!(
                "{:<22} {:>9.0} {:>12.0} {:>12.0} {:>14.0} {:>11.3}x",
                v.name,
                compute,
                i_misses,
                u_growth,
                total,
                base_total / total
            );
        }
        println!("best variant for this cache: {}\n", best.0);
        winners.push((icache, best.0));
    }
    if winners.windows(2).any(|w| w[0].1 != w[1].1) {
        println!("The best optimization level depends on the instruction cache —");
        println!("the crossover the dilation model finds without re-simulation:");
        for (c, w) in winners {
            println!("  {:>7} B I$: {w}", c.size_bytes());
        }
    } else {
        println!(
            "With these penalties, '{}' wins at every cache size — rerun with \
             different miss costs to move the crossover.",
            winners[0].1
        );
    }
    Ok(())
}
