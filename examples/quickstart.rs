//! Quickstart: estimate a wide processor's cache misses without ever
//! simulating its trace — then check the estimate against ground truth.
//!
//! Run with: `cargo run --release --example quickstart`

use mhe::core::evaluator::actual_misses;
use mhe::prelude::*;

fn main() -> Result<(), MheError> {
    // The paper's "small" memory configuration.
    let icache = CacheConfig::from_bytes(1024, 1, 32); // 1 KB direct-mapped
    let dcache = CacheConfig::from_bytes(1024, 1, 32);
    let ucache = CacheConfig::from_bytes(16 * 1024, 2, 64); // 16 KB 2-way

    let benchmark = Benchmark::Epic;
    println!("benchmark: {benchmark}");
    println!("reference processor: 1111 (1 int / 1 float / 1 mem / 1 branch)\n");

    // Measure ONCE on the reference processor: trace parameters + a
    // single-pass simulation per distinct line size.
    let config = EvalConfig::builder().events(150_000).build()?;
    let eval = ReferenceEvaluation::for_benchmark(
        benchmark,
        &ProcessorKind::P1111.mdes(),
        config,
        &[icache],
        &[dcache],
        &[ucache],
    );
    println!(
        "reference trace parameters (instruction stream): u(1) = {:.0}, p1 = {:.3}, lav = {:.1}\n",
        eval.iparams().u1,
        eval.iparams().p1,
        eval.iparams().lav
    );

    println!(
        "{:<6} {:>9} {:>16} {:>16} {:>8}",
        "proc", "dilation", "est. I$ misses", "actual misses", "error"
    );
    for kind in ProcessorKind::ALL {
        let d = eval.dilation_of(&kind.mdes());
        // The dilation-model estimate: pure arithmetic, no simulation.
        let est = eval.estimate_icache_misses(icache, d)?;
        // Ground truth: compile for the target and simulate its real trace.
        let target = eval.compile_target(&kind.mdes());
        let act =
            actual_misses(eval.program(), &target, eval.config(), StreamKind::Instruction, icache);
        let err = 100.0 * (est - act as f64) / act as f64;
        println!("{:<6} {:>9.2} {:>16.0} {:>16} {:>7.1}%", kind.name(), d, est, act, err);
    }
    println!("\nThe estimate is produced from reference-trace measurements alone;");
    println!("'actual' required generating and simulating each processor's trace.");
    Ok(())
}
