//! **mhe** — Memory-Hierarchy Evaluation for embedded VLIW systems.
//!
//! A from-scratch Rust reproduction of Abraham & Mahlke, *Automatic and
//! Efficient Evaluation of Memory Hierarchies for Embedded Systems*
//! (HPL-1999-132 / MICRO-32, 1999).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`workload`] | `mhe-workload` | program IR, synthetic benchmarks, execution engine |
//! | [`vliw`] | `mhe-vliw` | machine descriptions, scheduler, instruction formats, assembler, linker |
//! | [`trace`] | `mhe-trace` | address-trace generation, dilated traces |
//! | [`cache`] | `mhe-cache` | direct / single-pass / hierarchical cache simulation |
//! | [`model`] | `mhe-model` | trace parameters, the AHH analytic cache model |
//! | [`core`] | `mhe-core` | **the dilation model** and hierarchical evaluation |
//! | [`sampling`] | `mhe-sampling` | interval sampling: signatures, clustering, sampled simulation |
//! | [`spacewalk`] | `mhe-spacewalk` | Pareto sets, cost models, design-space walkers, the shared evaluation service |
//! | [`server`] | `mhe-server` | the sweep daemon wrapping the service for `spacewalker --connect` |
//! | [`obs`] | `mhe-obs` | zero-dependency observability: phase timers, counters, run reports |
//!
//! For applications, `use mhe::prelude::*;` imports the common working
//! set in one line (see [`prelude`]).
//!
//! # The one-paragraph idea
//!
//! Exploring a VLIW-processor × cache design space by simulating every
//! combination is hopeless. Simulate caches **once**, on the traces of a
//! single narrow *reference* processor (and only once per distinct line
//! size, via single-pass simulation). Model every wider processor's
//! instruction trace as the reference trace with each basic block
//! stretched by the text-size ratio *d* ("dilation"). Then instruction-
//! cache misses under dilation equal the misses of the same cache with its
//! line size contracted by *d* — interpolated between feasible line sizes
//! using the AHH analytic cache model — and unified-cache misses follow by
//! scaling with modeled collision counts.
//!
//! # Example
//!
//! ```
//! use mhe::cache::CacheConfig;
//! use mhe::core::evaluator::{EvalConfig, ReferenceEvaluation};
//! use mhe::vliw::ProcessorKind;
//! use mhe::workload::Benchmark;
//!
//! let icache = CacheConfig::from_bytes(1024, 1, 32);
//! let eval = ReferenceEvaluation::for_benchmark(
//!     Benchmark::Unepic,
//!     &ProcessorKind::P1111.mdes(),
//!     EvalConfig { events: 20_000, ..EvalConfig::default() },
//!     &[icache],
//!     &[icache],
//!     &[CacheConfig::from_bytes(16 * 1024, 2, 64)],
//! );
//! let d = eval.dilation_of(&ProcessorKind::P3221.mdes());
//! let est = eval.estimate_icache_misses(icache, d)?;
//! assert!(est > eval.icache_misses_measured(icache).unwrap() as f64);
//! # Ok::<(), mhe::core::MheError>(())
//! ```

#![warn(missing_docs)]

pub use mhe_cache as cache;
pub use mhe_core as core;
pub use mhe_model as model;
pub use mhe_obs as obs;
pub use mhe_sampling as sampling;
pub use mhe_server as server;
pub use mhe_spacewalk as spacewalk;
pub use mhe_trace as trace;
pub use mhe_vliw as vliw;
pub use mhe_workload as workload;

pub mod prelude {
    //! The recommended import for applications: the types that nearly
    //! every evaluation or exploration touches, in one line.
    //!
    //! ```
    //! use mhe::prelude::*;
    //!
    //! let cfg = EvalConfig::builder().events(20_000).build()?;
    //! let l1 = CacheConfig::from_bytes(1024, 1, 32);
    //! let eval = ReferenceEvaluation::for_benchmark(
    //!     Benchmark::Unepic,
    //!     &ProcessorKind::P1111.mdes(),
    //!     cfg,
    //!     &[l1],
    //!     &[l1],
    //!     &[CacheConfig::from_bytes(16 * 1024, 2, 64)],
    //! );
    //! assert!(eval.icache_misses_measured(l1).is_some());
    //! # Ok::<(), MheError>(())
    //! ```

    pub use mhe_cache::{Cache, CacheConfig, MemoryDesign, Penalties, Policy};
    pub use mhe_core::evaluator::{EvalConfig, EvalConfigBuilder, ReferenceEvaluation};
    pub use mhe_core::{
        evaluate_system, worker_threads, EvalMetrics, FaultPlan, MheError, ParallelSweep,
        RetryPolicy, SamplingConfig, SamplingMetrics, SweepError, SystemDesign,
    };
    pub use mhe_obs::{ObsLevel, RunReport};
    pub use mhe_sampling::SampledSim;
    pub use mhe_spacewalk::{
        run_worker, walk_heuristic, walk_memory, walk_system, walk_system_with, CacheDesign,
        CacheSpace, Checkpointer, Client, ClientBuilder, Coordinator, EvalService, EvaluationCache,
        FleetConfig, FleetJob, HaltHandle, MemoryPoint, MetricKey, ParetoSet, PreparedWorker,
        RetrySchedule, Server, ServiceConfig, ServiceLimits, SystemPoint, SystemSpace,
        WorkerOptions,
    };
    pub use mhe_trace::{Access, StreamKind, TraceGenerator};
    pub use mhe_vliw::{Mdes, ProcessorKind};
    pub use mhe_workload::{Benchmark, Program};
}
