//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of proptest's API its test suites actually use:
//! strategies over numeric ranges, tuples, mapped strategies, vectors and
//! unions, plus the `proptest!`, `prop_assert*` and `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! * cases are generated from a seed derived from the test name, so runs
//!   are fully deterministic (there is no `PROPTEST_CASES` / persistence);
//! * failing inputs are reported but **not shrunk**.

/// Deterministic pseudo-random generator (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An rng seeded from an arbitrary tag (the test name).
    pub fn deterministic(tag: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in tag.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h | 1 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Why a generated case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f` of this strategy's values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end as u128 - self.start as u128;
                let off = u128::from(rng.next_u64()) % span;
                (self.start as u128 + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($s:ident => $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0 => 0, S1 => 1);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5, S6 => 6);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5, S6 => 6, S7 => 7);

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<T> Union<T> {
    /// A union over the given strategies.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "empty union strategy");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// A strategy for vectors of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            )));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?} at {}:{}",
                stringify!($left), stringify!($right), l, r, file!(), line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?} at {}:{}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r,
                file!(), line!()
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    file!(), "::", stringify!($name)
                ));
                let mut rejected: u32 = 0;
                for case in 0..cfg.cases {
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject(_)) => rejected += 1,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {case}/{} failed: {msg}", cfg.cases);
                        }
                    }
                }
                assert!(
                    rejected < cfg.cases,
                    "every generated case was rejected by prop_assume!"
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (0.5f64..2.5).generate(&mut rng);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn full_u64_range_is_accepted() {
        let mut rng = crate::TestRng::deterministic("full");
        for _ in 0..100 {
            let _ = (1u64..u64::MAX).generate(&mut rng);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(x in 0u32..100, v in prop::collection::vec(0u8..10, 1..20)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assume!(x != 1_000_000);
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![0u64..10, (100u64..200).prop_map(|v| v * 2)]) {
            prop_assert!(x < 10 || (200..400).contains(&x), "x = {}", x);
        }
    }
}
