//! Offline drop-in subset of the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of criterion's API the `crates/bench` benches use. It is a
//! real (if simple) harness: every benchmark is warmed up, then timed over
//! enough iterations to fill a small measurement window, and the mean
//! time per iteration is printed — with throughput if configured. There
//! are no statistics, plots, or baselines.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; only a hint here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { measurement_window: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { criterion: self, throughput: None }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.measurement_window, None, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-based here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Reports per-iteration throughput alongside the time.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times one benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.criterion.measurement_window, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(
    name: &str,
    window: Duration,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher { window, iters: 0, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.elapsed / u32::try_from(b.iters.max(1)).unwrap_or(u32::MAX)
    };
    let mut line = format!("  {name}: {per_iter:?}/iter ({} iters)", b.iters);
    if per_iter > Duration::ZERO {
        match throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / per_iter.as_secs_f64();
                line.push_str(&format!(", {rate:.0} elem/s"));
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / per_iter.as_secs_f64();
                line.push_str(&format!(", {rate:.0} B/s"));
            }
            None => {}
        }
    }
    println!("{line}");
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    window: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up.
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.window {
            black_box(routine());
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        while spent < self.window {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            spent += start.elapsed();
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = spent;
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { measurement_window: Duration::from_millis(5) };
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Elements(100));
        let mut ran = 0u64;
        g.bench_function("count", |b| b.iter(|| ran += 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert!(ran > 0);
    }
}
