//! Network-layer chaos harness: frame faults against the daemon and the
//! fleet, plus the coordinator-handoff drill.
//!
//! The contract under test: with deterministic frame faults armed
//! (drop / duplicate / truncate / delay, the `MHE_FAULT_PLAN` syntax),
//! every daemon interaction either returns the byte-identical frontier
//! or a *structured* client error within its timeout — never a hang,
//! never corrupted bytes — and the service stays warm and identical for
//! the next client. The fleet under the same faults still converges to
//! the batch-identical frontier (leases, steals, and worker redials
//! absorb the damage).
//!
//! The handoff drill: a doomed worker leaves the sweep structurally
//! incomplete, the live coordinator is halted mid-sweep, its port is
//! rebound by a standby resumed from the shared checkpoint, and a fresh
//! worker skips the checkpointed points as prefill; the merged frontier
//! is byte-identical to batch.

use mhe::core::evaluator::{EvalConfig, ReferenceEvaluation};
use mhe::core::fault::{self, FaultPlan};
use mhe::prelude::*;
use mhe::spacewalk::service::proto::FrontierRequest;
use mhe::spacewalk::spec::Spec;
use mhe::spacewalk::{render_frontier, report_from, walker, ClientError};
use std::net::SocketAddr;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

mod common;

/// Light enough that one reference simulation is cheap, heavy enough
/// that the walk spans many frames' worth of fleet traffic.
const EVENTS: usize = 8_000;

/// One fully-built batch context shared by the fleet scenarios.
struct Batch {
    text: String,
    spec: Spec,
    eval: Arc<ReferenceEvaluation>,
    want_render: String,
    want_bits: Vec<(String, u64, u64)>,
}

fn batch(benchmark: &str) -> Batch {
    let text = common::demo_spec_text(benchmark, EVENTS);
    let spec = Spec::parse(&text).expect("demo spec parses");
    let eval = Arc::new(walker::prepare_evaluation(
        spec.benchmark.generate(),
        &ProcessorKind::P1111.mdes(),
        EvalConfig { events: spec.events, ..EvalConfig::default() },
        &spec.space,
    ));
    let db = EvaluationCache::new();
    let frontier =
        walker::walk_system(&eval, &spec.space, spec.penalties, &db).expect("batch walk");
    let report = report_from(&eval, &frontier, &db);
    let want_bits = report
        .rows
        .iter()
        .map(|r| (r.processor.clone(), r.cost.to_bits(), r.time.to_bits()))
        .collect();
    Batch { text, spec, eval, want_render: render_frontier(&report), want_bits }
}

impl Batch {
    fn job(&self) -> FleetJob {
        FleetJob { spec_text: self.text.clone(), sampling: None, policies: None }
    }

    fn worker_options(&self) -> WorkerOptions {
        WorkerOptions {
            threads: Some(1),
            prepared: Some(PreparedWorker {
                eval: Arc::clone(&self.eval),
                space: self.spec.space.clone(),
            }),
            ..WorkerOptions::default()
        }
    }

    fn request(&self) -> FrontierRequest {
        FrontierRequest {
            spec_text: self.text.clone(),
            heuristic: false,
            sampling: None,
            policies: None,
        }
    }

    /// The serial walk over a merged fleet cache, rendered exactly as
    /// `spacewalker fleet` renders it.
    fn finish(&self, db: &EvaluationCache) -> (String, Vec<(String, u64, u64)>) {
        let frontier =
            walker::walk_system_with(&self.eval, &self.spec.space, self.spec.penalties, db, None)
                .expect("post-fleet walk");
        let report = report_from(&self.eval, &frontier, db);
        let bits = report
            .rows
            .iter()
            .map(|r| (r.processor.clone(), r.cost.to_bits(), r.time.to_bits()))
            .collect();
        (render_frontier(&report), bits)
    }
}

fn report_bits(report: &mhe::spacewalk::service::proto::FrontierReport) -> Vec<(String, u64, u64)> {
    report.rows.iter().map(|r| (r.processor.clone(), r.cost.to_bits(), r.time.to_bits())).collect()
}

fn start_daemon() -> (SocketAddr, Arc<AtomicBool>, JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", Arc::new(EvalService::new(ServiceLimits::default())))
        .expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let drain = server.drain_handle();
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));
    (addr, drain, handle)
}

/// One chaos attempt: a fresh connection with a bounded timeout, so a
/// swallowed frame turns into a structured error, never a hang.
fn chaos_evaluate(
    addr: SocketAddr,
    request: FrontierRequest,
) -> Result<mhe::spacewalk::service::proto::FrontierReport, ClientError> {
    let mut client = Client::builder().addr(addr).timeout(Duration::from_secs(8)).connect()?;
    client.evaluate(request)
}

/// The deterministic chaos matrix: with the session already warm, each
/// documented frame fault is armed against exactly one request/response
/// exchange (frame 0 = the request, frame 1 = the response). Delays and
/// duplicates must not change a byte; drops and truncations must fail
/// *structurally* within the timeout. After every scenario the disarmed
/// daemon serves the exact batch bytes — chaos never corrupts state.
#[test]
fn frame_faults_yield_identity_or_structured_errors_never_corruption() {
    let _serial = fault::injection_lock().lock().unwrap();
    let batch = batch("unepic");
    let (addr, drain, handle) = start_daemon();

    // Warm the daemon's session so every scenario exchange is fast and
    // the frame schedule (request = frame 0, response = frame 1) holds.
    let warm = chaos_evaluate(addr, batch.request()).expect("warmup walk");
    assert_eq!(render_frontier(&warm), batch.want_render, "warmup differs from batch");

    /// What one armed fault is allowed to do to the exchange.
    enum Expect {
        /// Deliveries must not move a byte.
        Identical,
        /// Lost frames must surface as a transport-shaped error.
        Lost,
        /// A duplicated *request* is answered by the server's busy guard
        /// with a structured exit-code-2 error before the real response
        /// — also acceptable is the identical answer (when the duplicate
        /// lands after the response).
        IdenticalOrBusy,
    }
    let scenarios = [
        ("delay@0:40", Expect::Identical),
        ("delay@1:40", Expect::Identical),
        ("dup@0", Expect::IdenticalOrBusy),
        ("dup@1", Expect::Identical),
        ("drop@0", Expect::Lost),
        ("drop@1", Expect::Lost),
        ("trunc@0", Expect::Lost),
        ("trunc@1", Expect::Lost),
    ];
    for (plan_text, expect) in scenarios {
        let outcome = {
            let _guard = fault::arm(FaultPlan::parse(plan_text).expect("documented syntax"));
            chaos_evaluate(addr, batch.request())
        };
        match (expect, outcome) {
            (Expect::Identical | Expect::IdenticalOrBusy, Ok(report)) => {
                assert_eq!(
                    report_bits(&report),
                    batch.want_bits,
                    "{plan_text}: delivered frontier bits differ from batch"
                );
            }
            (Expect::Identical, Err(e)) => {
                panic!("{plan_text}: a delivery fault must not fail: {e}")
            }
            (Expect::IdenticalOrBusy, Err(ClientError::Remote { code, message })) => {
                assert_eq!(code, mhe::core::EXIT_BAD_CONFIG, "{plan_text}: {message}");
                assert!(message.contains("already in flight"), "{plan_text}: {message}");
            }
            (Expect::IdenticalOrBusy, Err(other)) => {
                panic!("{plan_text}: expected the busy guard or identity, got {other:?}")
            }
            (Expect::Lost, Err(ClientError::Unavailable(_) | ClientError::Protocol(_))) => {}
            (Expect::Lost, Err(other)) => {
                panic!("{plan_text}: expected a transport-shaped error, got {other:?}")
            }
            (Expect::Lost, Ok(_)) => {
                panic!("{plan_text}: a swallowed frame cannot serve an answer")
            }
        }

        // Disarmed: the daemon must serve the exact batch bytes again.
        let clean = chaos_evaluate(addr, batch.request())
            .unwrap_or_else(|e| panic!("{plan_text}: daemon did not survive the fault: {e}"));
        assert_eq!(
            render_frontier(&clean),
            batch.want_render,
            "{plan_text}: the daemon's state was corrupted by the fault"
        );
        assert_eq!(report_bits(&clean), batch.want_bits, "{plan_text}: post-fault bits differ");
    }

    drain.store(true, std::sync::atomic::Ordering::SeqCst);
    handle.join().expect("drained serve loop");
}

/// The seeded sweep: every seed derives one reproducible frame fault
/// aimed at the exchange. Any outcome other than "batch-identical
/// answer" or "structured error inside the timeout" is a failure — and
/// a failing seed is a pasteable regression test.
#[test]
fn seeded_net_chaos_never_hangs_and_never_corrupts() {
    let _serial = fault::injection_lock().lock().unwrap();
    let batch = batch("unepic");
    let (addr, drain, handle) = start_daemon();
    chaos_evaluate(addr, batch.request()).expect("warmup walk");

    for seed in 0..6u64 {
        let started = Instant::now();
        let outcome = {
            let _guard = fault::arm(FaultPlan::seeded_net(seed, 2));
            chaos_evaluate(addr, batch.request())
        };
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "seed {seed}: the exchange must stay inside its timeout"
        );
        match outcome {
            Ok(report) => {
                assert_eq!(
                    report_bits(&report),
                    batch.want_bits,
                    "seed {seed}: delivered frontier differs from batch"
                );
            }
            // Every failure must be structured: a dropped/truncated frame
            // surfaces as a transport error, a duplicated request as the
            // server's busy guard (exit code 2). Anything structured is
            // acceptable — the invariants are "no hang" (the timeout
            // bound above) and "no wrong bytes" (the Ok arm and the
            // clean rerun below).
            Err(ClientError::Unavailable(_) | ClientError::Protocol(_)) => {}
            Err(ClientError::Remote { code, message }) => {
                assert_eq!(code, mhe::core::EXIT_BAD_CONFIG, "seed {seed}: {message}");
                assert!(message.contains("already in flight"), "seed {seed}: {message}");
            }
            Err(other) => panic!("seed {seed}: expected a structured error, got {other:?}"),
        }
    }

    // After the whole sweep, the disarmed daemon still serves batch bytes.
    let clean = chaos_evaluate(addr, batch.request()).expect("daemon survives the sweep");
    assert_eq!(report_bits(&clean), batch.want_bits, "post-sweep bits differ from batch");

    drain.store(true, std::sync::atomic::Ordering::SeqCst);
    handle.join().expect("drained serve loop");
}

/// Fleet under fire: seeded frame faults against live coordinator ↔
/// worker traffic. Leases, steals, and worker redials must absorb the
/// damage — individual workers may fail, but the coordinator converges
/// and the merged frontier is byte-identical to batch.
#[test]
fn fleet_sweep_absorbs_frame_faults_and_stays_bit_identical() {
    let _serial = fault::injection_lock().lock().unwrap();
    let batch = batch("unepic");

    for seed in [7u64, 19] {
        let _guard = fault::arm(FaultPlan::seeded_net(seed, 40));
        let db = Arc::new(EvaluationCache::new());
        let cfg = FleetConfig {
            shard_count: 8,
            lease_timeout: Duration::from_secs(3),
            stall_timeout: Duration::from_secs(60),
            ..FleetConfig::default()
        };
        let coordinator = Coordinator::bind("127.0.0.1:0", batch.job(), cfg, Arc::clone(&db))
            .expect("bind coordinator");
        let addr = coordinator.local_addr().expect("local addr").to_string();

        let workers: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                let opts = WorkerOptions {
                    reply_timeout: Some(Duration::from_secs(2)),
                    redial_retries: 6,
                    redial_backoff: Some(Duration::from_millis(100)),
                    ..batch.worker_options()
                };
                std::thread::spawn(move || run_worker(&addr, opts))
            })
            .collect();
        let summary = coordinator
            .run(None)
            .unwrap_or_else(|e| panic!("seed {seed}: coordinator must converge: {e}"));
        assert!(summary.points > 0, "seed {seed}: fleet merged nothing");
        for w in workers {
            // A one-shot fault may cost a worker its connection (or its
            // life, when it fires mid-assignment); the sweep survives.
            let _ = w.join().expect("worker thread");
        }

        let (render, bits) = batch.finish(&db);
        assert_eq!(render, batch.want_render, "seed {seed}: chaos frontier differs from batch");
        assert_eq!(bits, batch.want_bits, "seed {seed}: chaos frontier bits differ from batch");
    }
}

/// The handoff drill. A first worker streams exactly 6 of the sweep's 16
/// points and then dies (`die_after_points`), so the primary provably
/// cannot finish; halting it mid-sweep saves the shared checkpoint on the
/// way out. A standby rebinds the same port resumed from that checkpoint,
/// a fresh worker receives the checkpointed points as prefill (no
/// recompute), and the completed frontier is byte-identical to batch.
/// No timers race the sweep: the incompleteness is structural.
#[test]
fn coordinator_handoff_resumes_from_checkpoint_and_identity_survives() {
    let batch = batch("unepic");
    let ckpt_dir = std::env::temp_dir().join(format!("mhe-handoff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let ckpt = Checkpointer::new(&ckpt_dir).expect("checkpoint dir");
    let cfg = FleetConfig { shard_count: 8, ..FleetConfig::default() };

    // Primary coordinator.
    let db1 = Arc::new(EvaluationCache::new());
    let primary = Coordinator::bind("127.0.0.1:0", batch.job(), cfg.clone(), Arc::clone(&db1))
        .expect("bind primary");
    let addr = primary.local_addr().expect("local addr");
    let halt = primary.halt_handle();
    let primary_run = {
        let ckpt = ckpt.clone();
        std::thread::spawn(move || primary.run(Some(&ckpt)))
    };

    // A doomed worker: delivers 6 points, then drops its socket and fails.
    // The sweep needs 16, so the primary is mid-sweep for as long as we
    // care to leave it there.
    let doomed = {
        let addr = addr.to_string();
        let opts = WorkerOptions {
            reply_timeout: Some(Duration::from_secs(5)),
            die_after_points: Some(6),
            ..batch.worker_options()
        };
        std::thread::spawn(move || run_worker(&addr, opts))
    };
    let _ = doomed.join().expect("doomed worker thread");

    // The doomed worker flushed its points before dying; wait for the
    // primary to merge them, then hand off.
    let deadline = Instant::now() + Duration::from_secs(120);
    while db1.is_empty() {
        assert!(Instant::now() < deadline, "no fleet progress before the handoff");
        std::thread::sleep(Duration::from_millis(20));
    }
    halt.halt();
    let halted = primary_run.join().expect("primary thread").expect_err("a halt is not success");
    assert!(halted.to_string().contains("halted for handoff"), "{halted}");

    // Standby: same port, state resumed from the shared checkpoint.
    let db2 = Arc::new(ckpt.load().expect("checkpoint readable"));
    assert!(!db2.is_empty(), "the halting coordinator must have checkpointed its merges");
    let standby =
        Coordinator::bind(addr, batch.job(), cfg, Arc::clone(&db2)).expect("rebind the port");

    // A fresh worker finishes the sweep against the standby. The redial
    // budget covers the dial racing the standby's accept loop.
    let worker = {
        let addr = addr.to_string();
        let opts = WorkerOptions {
            reply_timeout: Some(Duration::from_secs(5)),
            redial_retries: 40,
            redial_backoff: Some(Duration::from_millis(50)),
            ..batch.worker_options()
        };
        std::thread::spawn(move || run_worker(&addr, opts))
    };
    let summary = standby.run(Some(&ckpt)).expect("standby completes the sweep");
    assert!(summary.points > 0, "the standby merged nothing");

    let outcome = worker.join().expect("worker thread").expect("worker survives the handoff");
    assert!(
        outcome.skipped_prefilled >= 1,
        "checkpointed points must come back as prefill, not recomputes: {outcome:?}"
    );

    let (render, bits) = batch.finish(&db2);
    assert_eq!(render, batch.want_render, "post-handoff frontier differs from batch");
    assert_eq!(bits, batch.want_bits, "post-handoff frontier bits differ from batch");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}
