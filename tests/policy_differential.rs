//! Differential tests that keep every replacement policy honest.
//!
//! The single-pass simulator answers "how many misses at every
//! associativity" from one pass over the trace — via LRU stack distances,
//! a FIFO insertion-epoch wavetable, or (for PLRU and random) an embedded
//! grid of per-configuration direct simulations. Each of those paths is an
//! independent re-derivation of the same quantity the direct oracle
//! [`Cache`] computes by brute force, so any disagreement — on any
//! benchmark, any geometry, any thread count — is a bug, not noise.
//!
//! Three layers of defence:
//!
//! 1. **Exhaustive differential**: every policy × all ten benchmarks,
//!    single-pass grids vs the oracle, bit-identical, fanned out on 1 and
//!    8 threads with identical results.
//! 2. **Random-trace proptests**: arbitrary address streams and geometry,
//!    so the agreement does not depend on benchmark structure.
//! 3. **A pre-refactor LRU golden frontier**: the exact Pareto frontier
//!    (cost and time bits) captured *before* the replacement-policy
//!    generalization landed; the generalized code must reproduce it
//!    bit-for-bit, proving the refactor changed no LRU number.

use mhe::cache::{Cache, CacheConfig, Policy, SinglePassSim};
use mhe::prelude::*;
use proptest::prelude::*;

mod common;
use common::{instruction_trace, SEED};

const EVENTS: usize = 12_000;
const SET_COUNTS: [u32; 3] = [8, 32, 64];
const MAX_ASSOC: u32 = 4;
const LINE_WORDS: u32 = 8;

/// Runs one (trace, policy) differential over the whole geometry grid:
/// the single-pass answer must equal the direct oracle for every (sets,
/// assoc) point. Returns the grid of miss counts for cross-run comparison.
fn differential(trace: &[u64], policy: Policy) -> Vec<(u32, u32, u64)> {
    let mut sim = SinglePassSim::new_with_policy(policy, LINE_WORDS, &SET_COUNTS, MAX_ASSOC);
    sim.run(trace.iter().copied());
    let mut grid = Vec::new();
    for &sets in &SET_COUNTS {
        for assoc in 1..=MAX_ASSOC {
            let single_pass = sim.misses(sets, assoc);
            let oracle = Cache::new(CacheConfig::new(sets, assoc, LINE_WORDS).with_policy(policy))
                .run(trace.iter().copied())
                .misses;
            assert_eq!(
                single_pass, oracle,
                "{policy}: single-pass disagrees with oracle at sets={sets} assoc={assoc}"
            );
            grid.push((sets, assoc, single_pass));
        }
    }
    grid
}

/// One sweep result: which benchmark, which policy, which miss grid.
type SweepGrid = Vec<(Benchmark, Policy, Vec<(u32, u32, u64)>)>;

/// The benchmark pair with the smallest programs — the only ones that
/// run the *embedded direct-sim grid* policies (PLRU, random), whose
/// single-pass path simulates every (sets, assoc) point individually
/// and costs a full grid of direct simulations per trace. LRU and FIFO
/// have true single-pass engines and stay exhaustive over all ten
/// benchmarks; rerunning the direct-grid policies on all ten was pure
/// runtime creep with no differential power the small pair lacks.
const DIRECT_GRID_PAIR: [Benchmark; 2] = [Benchmark::Epic, Benchmark::Unepic];

/// Wall-clock ceiling for the exhaustive differential, far below the
/// 300 s `scripts/ci.sh` budget so the sampling accuracy suite has
/// headroom inside the same gate.
const SWEEP_BUDGET: std::time::Duration = std::time::Duration::from_secs(60);

/// Every policy matches the oracle: LRU/FIFO across all ten benchmarks,
/// the embedded direct-grid policies (PLRU, random) on the smallest
/// pair, and the whole sweep returns identical grids on 1 and 8 workers.
#[test]
fn every_policy_matches_oracle_on_every_benchmark_at_any_thread_count() {
    let start = std::time::Instant::now();
    let traces: Vec<(Benchmark, Vec<u64>)> =
        Benchmark::ALL.iter().map(|&b| (b, instruction_trace(b, EVENTS))).collect();
    let work: Vec<(usize, Policy)> = (0..traces.len())
        .flat_map(|i| Policy::all().into_iter().map(move |p| (i, p)))
        .filter(|&(i, p)| {
            matches!(p, Policy::Lru | Policy::Fifo) || DIRECT_GRID_PAIR.contains(&traces[i].0)
        })
        .collect();
    let run = |threads: usize| -> SweepGrid {
        ParallelSweep::with_threads(threads).map(work.clone(), |(i, policy)| {
            let (b, trace) = &traces[i];
            (*b, policy, differential(trace, policy))
        })
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial, parallel, "miss grids must not depend on the thread count");
    let elapsed = start.elapsed();
    assert!(
        elapsed < SWEEP_BUDGET,
        "differential sweep took {elapsed:?}; must stay under {SWEEP_BUDGET:?} to leave \
         ci.sh headroom"
    );
    // Sanity: the policies genuinely differ somewhere (the differential
    // would pass vacuously if every engine were secretly LRU).
    let lru: Vec<_> = serial.iter().filter(|(_, p, _)| *p == Policy::Lru).collect();
    let diverged = serial.iter().any(|(b, p, grid)| {
        *p != Policy::Lru && lru.iter().any(|(lb, _, lgrid)| lb == b && lgrid != grid)
    });
    assert!(diverged, "no policy ever diverged from LRU — engines are not being exercised");
}

/// The evaluator groups simulation tasks by (line size, policy); a FIFO
/// build must produce the same measured counts at 1 and 8 worker threads.
#[test]
fn evaluator_fifo_builds_are_thread_invariant() {
    for b in [Benchmark::Epic, Benchmark::Unepic] {
        let l1 = CacheConfig::from_bytes(1024, 2, 32);
        let u1 = CacheConfig::from_bytes(16 * 1024, 2, 64);
        let run = |threads: usize| {
            let cfg = EvalConfig::builder()
                .events(20_000)
                .seed(SEED)
                .threads(threads)
                .policy(Policy::Fifo)
                .build()
                .unwrap();
            let eval = ReferenceEvaluation::for_benchmark(
                b,
                &ProcessorKind::P1111.mdes(),
                cfg,
                &[l1],
                &[l1],
                &[u1],
            );
            let fifo = |c: CacheConfig| c.with_policy(Policy::Fifo);
            (
                eval.icache_misses_measured(fifo(l1)).expect("icache measured under fifo"),
                eval.ucache_misses_measured(fifo(u1)).expect("ucache measured under fifo"),
                eval.dcache_misses(fifo(l1)).expect("dcache simulated under fifo"),
            )
        };
        assert_eq!(run(1), run(8), "{b:?}: evaluator results must not depend on threads");
    }
}

/// The explicit-policy configs pass through `for_benchmark` unchanged:
/// `EvalConfig::policy` stamps only configs still carrying the LRU
/// default.
#[test]
fn explicit_policies_survive_the_config_wide_default() {
    let lru = CacheConfig::from_bytes(1024, 2, 32);
    let plru = lru.with_policy(Policy::PlruTree);
    let cfg = EvalConfig::builder().events(10_000).seed(SEED).policy(Policy::Fifo).build().unwrap();
    let eval = ReferenceEvaluation::for_benchmark(
        Benchmark::Unepic,
        &ProcessorKind::P1111.mdes(),
        cfg,
        &[lru, plru],
        &[],
        &[CacheConfig::from_bytes(16 * 1024, 2, 64)],
    );
    // The LRU-default config got the FIFO stamp; the explicit PLRU one
    // kept its policy.
    assert!(eval.icache_misses_measured(lru.with_policy(Policy::Fifo)).is_some());
    assert!(eval.icache_misses_measured(plru).is_some());
    assert!(eval.icache_misses_measured(lru).is_none(), "unstamped LRU was not requested");
}

// --- pre-refactor LRU golden frontier -----------------------------------
//
// Captured by running `walk_icache` (epic, P1111 reference, 50 000
// events, seed 0xC0FF_EE01, threads 2, dilation 1.5) at the commit
// *before* the replacement-policy generalization. Tuples are (sets,
// assoc, line_words, cost bits, time bits). If this test moves, the
// refactor changed an LRU number — that is a bug by definition.

const GOLDEN_LRU_FRONTIER: [(u32, u32, u32, u64, u64); 7] = [
    (32, 1, 8, 0x4021eb851eb851ec, 0x40c104563027ee60),
    (64, 1, 8, 0x4031db22d0e56042, 0x40b51f20b8e53f39),
    (32, 2, 8, 0x4031eb851eb851ec, 0x40b39c43a2cec480),
    (128, 1, 8, 0x4041cac083126e98, 0x40a906b6a97282b0),
    (64, 2, 8, 0x4041db22d0e56042, 0x40a3f4d038be0c9c),
    (256, 1, 8, 0x4051ba5e353f7cee, 0x409563c0ac5be654),
    (128, 2, 8, 0x4051cac083126e98, 0x409430a06179288e),
];

#[test]
fn lru_golden_frontier_reproduces_bit_for_bit() {
    use mhe_spacewalk::walker::{prepare_evaluation, walk_icache};
    let space = SystemSpace {
        processors: vec![ProcessorKind::P1111.mdes()],
        icache: CacheSpace {
            sizes_bytes: vec![1024, 2048, 4096, 8192],
            assocs: vec![1, 2],
            line_bytes: vec![16, 32],
            ports: vec![1],
            policies: vec![Policy::Lru],
        },
        dcache: CacheSpace {
            sizes_bytes: vec![1024],
            assocs: vec![1],
            line_bytes: vec![32],
            ports: vec![1],
            policies: vec![Policy::Lru],
        },
        ucache: CacheSpace {
            sizes_bytes: vec![16 << 10],
            assocs: vec![2],
            line_bytes: vec![64],
            ports: vec![1],
            policies: vec![Policy::Lru],
        },
    };
    let eval = prepare_evaluation(
        Benchmark::Epic.generate(),
        &ProcessorKind::P1111.mdes(),
        EvalConfig { events: 50_000, seed: SEED, threads: 2, ..EvalConfig::default() },
        &space,
    );
    let db = EvaluationCache::new();
    let frontier = walk_icache(&eval, &space.icache, 1.5, &db).unwrap();
    let got: Vec<(u32, u32, u32, u64, u64)> = frontier
        .points()
        .iter()
        .map(|p| {
            (
                p.design.config.sets,
                p.design.config.assoc,
                p.design.config.line_words,
                p.cost.to_bits(),
                p.time.to_bits(),
            )
        })
        .collect();
    assert_eq!(got, GOLDEN_LRU_FRONTIER, "pre-refactor LRU frontier must reproduce exactly");
}

// --- random-trace proptests ----------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary address streams: the single-pass path agrees with the
    /// oracle for every policy on random geometry.
    #[test]
    fn random_traces_agree_with_the_oracle(
        addrs in proptest::collection::vec(0u64..4096, 1..300),
        sets_pow in 0u32..5,
        assoc in 1u32..5,
        policy_idx in 0usize..4,
    ) {
        let sets = 1u32 << sets_pow;
        let policy = Policy::all()[policy_idx];
        let mut sim = SinglePassSim::new_with_policy(policy, 4, &[sets], assoc);
        sim.run(addrs.iter().copied());
        let oracle = Cache::new(CacheConfig::new(sets, assoc, 4).with_policy(policy))
            .run(addrs.iter().copied());
        prop_assert_eq!(sim.misses(sets, assoc), oracle.misses);
    }

    /// LRU regression: under the generalized engines, the LRU stack path
    /// still equals a direct LRU simulation on arbitrary traces (the
    /// pre-refactor behaviour, preserved).
    #[test]
    fn lru_stack_distances_survive_the_generalization(
        addrs in proptest::collection::vec(0u64..2048, 1..300),
        sets_pow in 0u32..4,
        assoc in 1u32..5,
    ) {
        let sets = 1u32 << sets_pow;
        let mut sim = SinglePassSim::new(4, &[sets], assoc);
        sim.run(addrs.iter().copied());
        let oracle = Cache::new(CacheConfig::new(sets, assoc, 4)).run(addrs.iter().copied());
        prop_assert_eq!(sim.misses(sets, assoc), oracle.misses);
        prop_assert_eq!(sim.policy(), Policy::Lru);
    }
}
