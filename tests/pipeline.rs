//! Cross-crate integration tests: the whole pipeline from benchmark
//! synthesis to dilation-model estimates.

use mhe::core::evaluator::{actual_misses, dilated_misses};
use mhe::prelude::*;
use mhe::vliw::compile::Compiled;

const EVENTS: usize = 60_000;

fn eval(b: Benchmark) -> ReferenceEvaluation {
    ReferenceEvaluation::for_benchmark(
        b,
        &ProcessorKind::P1111.mdes(),
        EvalConfig { events: EVENTS, ..EvalConfig::default() },
        &[CacheConfig::from_bytes(1024, 1, 32), CacheConfig::from_bytes(16 * 1024, 2, 32)],
        &[CacheConfig::from_bytes(1024, 1, 32)],
        &[CacheConfig::from_bytes(16 * 1024, 2, 64)],
    )
}

#[test]
fn lemma1_holds_exactly_in_simulation() {
    // Lemma 1: M(IC(S,A,L), Pref, d) = M(IC(S,A,L/d), Pref) when L/d is
    // feasible. Our dilated-trace generator and cache simulator satisfy the
    // lemma's premises exactly, so at d = 2 the dilated-trace misses of an
    // 8-word-line cache must equal the reference-trace misses of the
    // 4-word-line cache — to the miss.
    let e = eval(Benchmark::Unepic);
    let l8 = CacheConfig::new(32, 1, 8);
    let l4 = CacheConfig::new(32, 1, 4);
    let dilated =
        dilated_misses(e.program(), e.reference(), 2.0, e.config(), StreamKind::Instruction, l8);
    let contracted = e.icache_misses_measured(l4).expect("expanded line size");
    assert_eq!(dilated, contracted, "Lemma 1 violated");
}

#[test]
fn estimates_equal_measurement_at_unit_dilation_everywhere() {
    let e = eval(Benchmark::Mipmap);
    for cfg in [CacheConfig::from_bytes(1024, 1, 32), CacheConfig::from_bytes(16 * 1024, 2, 32)] {
        let est = e.estimate_icache_misses(cfg, 1.0).unwrap();
        assert!((est - e.icache_misses_measured(cfg).unwrap() as f64).abs() < 1e-9);
    }
}

#[test]
fn model_beats_the_constant_memory_assumption() {
    // The paper's bottom line (Fig. 7): assuming memory behaviour is
    // width-independent (normalized misses = 1.0) is much worse than the
    // dilation model. Check on the 6332 target.
    let e = eval(Benchmark::Gcc);
    let ic = CacheConfig::from_bytes(1024, 1, 32);
    let d = e.dilation_of(&ProcessorKind::P6332.mdes());
    assert!(d > 2.0, "6332 dilation {d}");
    let target = e.compile_target(&ProcessorKind::P6332.mdes());
    let act = actual_misses(e.program(), &target, e.config(), StreamKind::Instruction, ic) as f64;
    let ref_misses = e.icache_misses_measured(ic).unwrap() as f64;
    let est = e.estimate_icache_misses(ic, d).unwrap();
    let err_model = (est - act).abs();
    let err_constant = (ref_misses - act).abs();
    assert!(
        err_model < 0.5 * err_constant,
        "model error {err_model:.0} should be far below constant-assumption error {err_constant:.0}"
    );
}

#[test]
fn actual_misses_increase_with_processor_width() {
    let e = eval(Benchmark::Vortex);
    let ic = CacheConfig::from_bytes(1024, 1, 32);
    let mut prev = 0u64;
    for kind in ProcessorKind::ALL {
        let target = e.compile_target(&kind.mdes());
        let m = actual_misses(e.program(), &target, e.config(), StreamKind::Instruction, ic);
        assert!(m > prev, "{kind}: misses {m} <= previous {prev}");
        prev = m;
    }
}

#[test]
fn unified_estimate_is_between_reference_and_double() {
    // Sanity corridor for the extrapolation at moderate dilation.
    let e = eval(Benchmark::Rasta);
    let uc = CacheConfig::from_bytes(16 * 1024, 2, 64);
    let base = e.ucache_misses_measured(uc).unwrap() as f64;
    let est = e.estimate_ucache_misses(uc, 1.8).unwrap();
    assert!(est >= base, "dilated estimate below reference: {est} < {base}");
    assert!(est < 3.0 * base, "unified estimate exploded: {est} vs {base}");
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let e = eval(Benchmark::PgpEncode);
        let ic = CacheConfig::from_bytes(1024, 1, 32);
        let d = e.dilation_of(&ProcessorKind::P4221.mdes());
        (d, e.estimate_icache_misses(ic, d).unwrap())
    };
    assert_eq!(run(), run());
}

#[test]
fn single_pass_results_match_direct_cache_on_real_traces() {
    // End-to-end cross-check of the two simulators on a real (not random)
    // instruction trace.
    let program = Benchmark::Epic.generate();
    let compiled = Compiled::build(&program, &ProcessorKind::P1111.mdes(), None);
    let cfg = CacheConfig::new(64, 2, 8);
    let mut direct = Cache::new(cfg);
    let mut single = mhe::cache::SinglePassSim::for_configs(&[cfg]);
    for a in TraceGenerator::new(&program, &compiled, 3)
        .with_event_limit(EVENTS)
        .stream(StreamKind::Instruction)
    {
        direct.access(a.addr);
        single.access(a.addr);
    }
    assert_eq!(direct.stats().misses, single.misses(64, 2));
}
