//! Determinism of the parallel walkers: `walk_system` must produce
//! bit-identical Pareto frontiers at 1, 2 and 8 worker threads, with both
//! a cold and a warm evaluation cache. The walkers fan per-design
//! evaluation out over worker threads but merge serially in enumeration
//! order, so thread count may only change the wall clock — never the
//! frontier.

use mhe::prelude::*;
use mhe::spacewalk::walker;

fn space() -> SystemSpace {
    SystemSpace {
        processors: vec![
            ProcessorKind::P1111.mdes(),
            ProcessorKind::P2111.mdes(),
            ProcessorKind::P3221.mdes(),
        ],
        icache: CacheSpace {
            sizes_bytes: vec![1 << 10, 2 << 10, 4 << 10],
            assocs: vec![1, 2],
            line_bytes: vec![16, 32],
            ports: vec![1],
            policies: vec![Policy::Lru],
        },
        dcache: CacheSpace {
            sizes_bytes: vec![1 << 10, 4 << 10],
            assocs: vec![1],
            line_bytes: vec![32],
            ports: vec![1],
            policies: vec![Policy::Lru],
        },
        ucache: CacheSpace {
            sizes_bytes: vec![16 << 10, 64 << 10],
            assocs: vec![2],
            line_bytes: vec![64],
            ports: vec![1],
            policies: vec![Policy::Lru],
        },
    }
}

/// The frontier reduced to exactly comparable bits: processor name, cache
/// geometries, and the raw `f64` bit patterns of cost and time.
type FrontierBits = Vec<(String, String, String, String, u64, u64)>;

fn frontier_bits(
    eval: &ReferenceEvaluation,
    space: &SystemSpace,
    db: &EvaluationCache,
) -> FrontierBits {
    let frontier = walker::walk_system(eval, space, Penalties::default(), db).expect("walk");
    frontier
        .points()
        .iter()
        .map(|p| {
            (
                p.design.processor.name.clone(),
                p.design.memory.icache.config.to_string(),
                p.design.memory.dcache.config.to_string(),
                p.design.memory.ucache.config.to_string(),
                p.cost.to_bits(),
                p.time.to_bits(),
            )
        })
        .collect()
}

#[test]
fn walk_system_is_bit_identical_across_thread_counts() {
    let space = space();
    let mut eval = walker::prepare_evaluation(
        Benchmark::Unepic.generate(),
        &ProcessorKind::P1111.mdes(),
        EvalConfig::builder().events(40_000).build().expect("valid config"),
        &space,
    );

    // Cold cache at every thread count: each run computes everything.
    let mut cold = Vec::new();
    for threads in [1usize, 2, 8] {
        eval.override_worker_threads(threads);
        let db = EvaluationCache::new();
        cold.push((threads, frontier_bits(&eval, &space, &db)));
    }
    for (threads, bits) in &cold[1..] {
        assert_eq!(&cold[0].1, bits, "cold-cache frontier differs between 1 and {threads} threads");
    }

    // Warm cache: seed with a 1-thread walk, then re-walk at each count.
    eval.override_worker_threads(1);
    let warm_db = EvaluationCache::new();
    let seed_bits = frontier_bits(&eval, &space, &warm_db);
    assert_eq!(seed_bits, cold[0].1, "warm seed differs from cold walk");
    for threads in [1usize, 2, 8] {
        eval.override_worker_threads(threads);
        let (_, computes_before) = warm_db.stats();
        let bits = frontier_bits(&eval, &space, &warm_db);
        let (_, computes_after) = warm_db.stats();
        assert_eq!(bits, cold[0].1, "warm-cache frontier differs at {threads} threads");
        assert_eq!(
            computes_before, computes_after,
            "warm walk at {threads} threads recomputed metrics"
        );
    }
}
