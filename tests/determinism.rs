//! Bit-determinism of the parallel evaluation engine.
//!
//! The contract from DESIGN.md ("Parallel evaluation"): parallelism must
//! be invisible to results. A [`ReferenceEvaluation`] built with any
//! worker count yields the same measured miss maps and, therefore, the
//! same analytic estimates — bit-identical, not merely close.

use mhe::prelude::*;

const EVENTS: usize = 30_000;

fn spaces() -> (Vec<CacheConfig>, Vec<CacheConfig>, Vec<CacheConfig>) {
    // Several line sizes per stream so the build fans out many single-pass
    // simulations — the interesting case for scheduling.
    let icaches = vec![
        CacheConfig::from_bytes(1024, 1, 16),
        CacheConfig::from_bytes(1024, 1, 32),
        CacheConfig::from_bytes(16 * 1024, 2, 32),
        CacheConfig::from_bytes(16 * 1024, 2, 64),
    ];
    let dcaches = vec![CacheConfig::from_bytes(1024, 1, 32), CacheConfig::from_bytes(4096, 2, 16)];
    let ucaches =
        vec![CacheConfig::from_bytes(16 * 1024, 2, 64), CacheConfig::from_bytes(128 * 1024, 4, 32)];
    (icaches, dcaches, ucaches)
}

fn build(threads: usize) -> ReferenceEvaluation {
    let (ic, dc, uc) = spaces();
    ReferenceEvaluation::for_benchmark(
        Benchmark::Epic,
        &ProcessorKind::P1111.mdes(),
        EvalConfig { events: EVENTS, threads, ..EvalConfig::default() },
        &ic,
        &dc,
        &uc,
    )
}

#[test]
fn measured_maps_identical_across_thread_counts() {
    let one = build(1);
    for threads in [2, 8] {
        let many = build(threads);
        assert_eq!(one.imeasured(), many.imeasured(), "imeasured @ {threads} threads");
        assert_eq!(one.dmeasured(), many.dmeasured(), "dmeasured @ {threads} threads");
        assert_eq!(one.umeasured(), many.umeasured(), "umeasured @ {threads} threads");
    }
}

#[test]
fn estimates_identical_across_thread_counts() {
    let (ic, _, uc) = spaces();
    let one = build(1);
    let two = build(2);
    let eight = build(8);
    for d in [1.0, 1.37, 2.0, 3.25] {
        for &cfg in &ic {
            let a = one.estimate_icache_misses(cfg, d).unwrap();
            let b = two.estimate_icache_misses(cfg, d).unwrap();
            let c = eight.estimate_icache_misses(cfg, d).unwrap();
            // Bit-identical: the same measured integers feed the same
            // float pipeline, so even the rounding is reproduced.
            assert_eq!(a.to_bits(), b.to_bits(), "icache {cfg} @ d={d}");
            assert_eq!(a.to_bits(), c.to_bits(), "icache {cfg} @ d={d}");
        }
        for &cfg in &uc {
            let a = one.estimate_ucache_misses(cfg, d).unwrap();
            let b = two.estimate_ucache_misses(cfg, d).unwrap();
            let c = eight.estimate_ucache_misses(cfg, d).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "ucache {cfg} @ d={d}");
            assert_eq!(a.to_bits(), c.to_bits(), "ucache {cfg} @ d={d}");
        }
    }
}

#[test]
fn metrics_reflect_thread_count_and_work() {
    let (ic, dc, uc) = spaces();
    let eval = build(3);
    let m = eval.metrics();
    assert_eq!(m.threads, 3);
    assert!(m.trace_len > 0);
    // One pass per distinct (stream, line size). The instruction space is
    // expanded with contracted lines (Lemma 1 anchors), so it has at least
    // its three requested line sizes; data {16,32} and unified {32,64} are
    // measured as-is, two passes each.
    let by_stream = |s| m.passes.iter().filter(|p| p.stream == s).count();
    assert!(by_stream(StreamKind::Instruction) >= 3);
    assert_eq!(by_stream(StreamKind::Data), 2);
    assert_eq!(by_stream(StreamKind::Unified), 2);
    let mut keys: Vec<_> =
        m.passes.iter().map(|p| (format!("{:?}", p.stream), p.line_words)).collect();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), m.passes.len(), "one pass per (stream, line)");
    assert!(m.simulated_configs() >= ic.len() + dc.len() + uc.len());
    assert!(m.simulated_addresses() > 0);
    assert!(m.build_wall >= m.sim_wall);
}

#[test]
fn explicit_threads_match_env_default_result() {
    // threads: 0 resolves to the environment default; whatever it is, the
    // numbers must equal the single-thread build's.
    let auto = build(0);
    let one = build(1);
    assert_eq!(auto.imeasured(), one.imeasured());
    assert_eq!(auto.umeasured(), one.umeasured());
    assert!(auto.metrics().threads >= 1);
}
