//! The run-report contract: the line-JSON schema is pinned word for word
//! (version 1), and a real evaluation + walk records every phase the
//! report promises.
//!
//! The obs level is process-global; the one test that enables it does all
//! its recording itself and restores `Off` before returning (this file is
//! its own test binary, so no other test races on the level).

use mhe::obs::{ObsLevel, Phase, PhaseStats, RunReport, Snapshot, REPORT_SCHEMA_VERSION};
use mhe::prelude::*;
use mhe::spacewalk::walker;
use std::io::BufWriter;

/// Golden rendering of a hand-built report: pins field names, order,
/// number formatting, and the null efficiency of wall-less phases for
/// schema version 1. Changing any of it must bump
/// [`REPORT_SCHEMA_VERSION`] and this string.
#[test]
fn json_line_schema_is_golden() {
    assert_eq!(REPORT_SCHEMA_VERSION, 1);
    let report = RunReport {
        label: "golden \"run\"".to_string(),
        threads: 4,
        phases: vec![
            PhaseStats {
                phase: Phase::Simulate.name(),
                spans: 2,
                busy_ns: 4_000_000_000,
                wall_ns: 1_000_000_000,
                events: 1_000_000,
                bytes: 0,
            },
            PhaseStats {
                phase: Phase::Decode.name(),
                spans: 8,
                busy_ns: 500_000_000,
                wall_ns: 0,
                events: 250_000,
                bytes: 2_000_000,
            },
        ],
        counters: vec![("db_hit", 10), ("db_miss", 3)],
    };
    let golden = concat!(
        "{\"v\":1,\"report\":\"golden \\\"run\\\"\",\"threads\":4,\"phases\":[",
        "{\"phase\":\"simulate\",\"spans\":2,\"busy_ns\":4000000000,",
        "\"wall_ns\":1000000000,\"events\":1000000,\"bytes\":0,",
        "\"events_per_s\":1000000.0,\"bytes_per_s\":0.0,\"efficiency\":1.000},",
        "{\"phase\":\"decode\",\"spans\":8,\"busy_ns\":500000000,\"wall_ns\":0,",
        "\"events\":250000,\"bytes\":2000000,\"events_per_s\":500000.0,",
        "\"bytes_per_s\":4000000.0,\"efficiency\":null}",
        "],\"counters\":{\"db_hit\":10,\"db_miss\":3}}",
    );
    assert_eq!(report.to_json_line(), golden);
}

#[test]
fn evaluation_and_walk_record_every_promised_phase() {
    mhe::obs::set_level(ObsLevel::Json);
    let before = Snapshot::now();

    let space = SystemSpace {
        processors: vec![ProcessorKind::P1111.mdes()],
        icache: CacheSpace {
            sizes_bytes: vec![1 << 10, 4 << 10],
            assocs: vec![1],
            line_bytes: vec![32],
            ports: vec![1],
            policies: vec![Policy::Lru],
        },
        dcache: CacheSpace {
            sizes_bytes: vec![1 << 10],
            assocs: vec![1],
            line_bytes: vec![32],
            ports: vec![1],
            policies: vec![Policy::Lru],
        },
        ucache: CacheSpace {
            sizes_bytes: vec![16 << 10],
            assocs: vec![2],
            line_bytes: vec![64],
            ports: vec![1],
            policies: vec![Policy::Lru],
        },
    };
    let cfg = EvalConfig::builder().events(20_000).build().expect("valid config");
    let eval = walker::prepare_evaluation(
        Benchmark::Unepic.generate(),
        &ProcessorKind::P1111.mdes(),
        cfg,
        &space,
    );
    // Round-trip the reference trace through the codec so the encode and
    // decode phases record, exactly as `trace_replay` does with files.
    let dir = std::env::temp_dir();
    let path = dir.join(format!("mhe_obs_report_{}.mtr", std::process::id()));
    eval.capture_mtr(BufWriter::new(std::fs::File::create(&path).unwrap())).unwrap();
    let replayed = ReferenceEvaluation::replay_file(
        Benchmark::Unepic.generate(),
        &ProcessorKind::P1111.mdes(),
        cfg,
        &path,
        &space.icache.configs(),
        &space.dcache.configs(),
        &space.ucache.configs(),
    )
    .expect("replay of a just-captured trace");
    assert_eq!(eval.imeasured(), replayed.imeasured());
    std::fs::remove_file(&path).ok();

    let db = EvaluationCache::new();
    walker::walk_system(&eval, &space, Penalties::default(), &db).expect("walk succeeds");

    let report = RunReport::since("obs_report_test", cfg.worker_threads(), &before);
    mhe::obs::set_level(ObsLevel::Off);
    mhe::obs::reset();

    let recorded: Vec<&str> = report.phases.iter().map(|p| p.phase).collect();
    for phase in [
        Phase::TraceGen,
        Phase::Encode,
        Phase::Decode,
        Phase::Simulate,
        Phase::Estimate,
        Phase::Walk,
    ] {
        assert!(
            recorded.contains(&phase.name()),
            "phase {:?} missing from report; recorded: {recorded:?}",
            phase.name()
        );
    }
    assert!(
        report.counters.iter().any(|(name, _)| *name == "db_hit" || *name == "db_miss"),
        "cache-db counters missing: {:?}",
        report.counters
    );

    // The emitted line is valid for the pinned schema prefix and names
    // every recorded phase.
    let line = report.to_json_line();
    assert!(line.starts_with("{\"v\":1,\"report\":\"obs_report_test\""), "{line}");
    for p in &recorded {
        assert!(line.contains(&format!("\"phase\":\"{p}\"")), "{line}");
    }
}
