//! Integration: hand-built programs flow through the entire pipeline —
//! compile, trace, simulate, model, estimate.

use mhe::prelude::*;
use mhe::vliw::compile::Compiled;
use mhe::workload::build::ProgramBuilder;
use mhe::workload::data::DataPattern;

/// A two-phase kernel: a streaming loop plus a pointer-chasing loop.
fn custom_program() -> Program {
    let mut b = ProgramBuilder::new("custom-kernel");
    let stream = b.pattern(DataPattern::Stream { base: 0x0800_0000, len_words: 8192, stride: 1 });
    let random = b.pattern(DataPattern::Random { base: 0x0810_0000, len_words: 2048 });
    let main = b.procedure("main");
    let phase1 = b.block(main);
    b.load(main, phase1, stream);
    b.int_ops(main, phase1, 3);
    b.store(main, phase1, stream);
    let phase2 = b.block(main);
    b.count_loop(main, phase1, phase2, 200.0);
    b.load(main, phase2, random);
    b.int_ops(main, phase2, 2);
    let done = b.block(main);
    b.count_loop(main, phase2, done, 100.0);
    b.exit(main, done);
    b.finish().expect("valid program")
}

#[test]
fn custom_program_compiles_for_every_processor() {
    let p = custom_program();
    let mut prev_text = 0;
    for kind in ProcessorKind::ALL {
        let c = Compiled::build(&p, &kind.mdes(), None);
        assert!(c.text_words() > prev_text, "{kind}: text must grow with width");
        prev_text = c.text_words();
    }
}

#[test]
fn custom_program_produces_sane_traces() {
    let p = custom_program();
    let c = Compiled::build(&p, &ProcessorKind::P1111.mdes(), None);
    let trace: Vec<_> = TraceGenerator::new(&p, &c, 11).take(50_000).collect();
    let data: Vec<u64> = trace.iter().filter(|a| a.kind.is_data()).map(|a| a.addr).collect();
    // Both data regions are exercised.
    assert!(data.iter().any(|&a| (0x0800_0000..0x0800_2000 + 8192).contains(&a)));
    assert!(data.iter().any(|&a| a >= 0x0810_0000));
}

#[test]
fn custom_program_feeds_the_dilation_model() {
    let p = custom_program();
    let ic = CacheConfig::from_bytes(1024, 1, 32);
    let eval = ReferenceEvaluation::build(
        p,
        &ProcessorKind::P1111.mdes(),
        EvalConfig { events: 30_000, ..EvalConfig::default() },
        &[ic],
        &[],
        &[],
    );
    let d = eval.dilation_of(&ProcessorKind::P3221.mdes());
    assert!(d > 1.2);
    let est = eval.estimate_icache_misses(ic, d).unwrap();
    // A two-block kernel fits any cache: essentially no steady-state misses
    // regardless of dilation — the estimate must stay tiny, not explode.
    let measured = eval.icache_misses_measured(ic).unwrap() as f64;
    assert!(est <= measured * 50.0 + 100.0, "estimate exploded: {est} vs {measured}");
}

#[test]
fn streaming_dominates_icache_residency() {
    // The custom kernel's instruction working set is two blocks: the
    // instruction stream must be far more cache-friendly than the data
    // stream in a small cache.
    let p = custom_program();
    let c = Compiled::build(&p, &ProcessorKind::P1111.mdes(), None);
    let ic = CacheConfig::from_bytes(1024, 1, 32);
    let dc = CacheConfig::from_bytes(1024, 1, 32);
    let mut icache = Cache::new(ic);
    let mut dcache = Cache::new(dc);
    for a in TraceGenerator::new(&p, &c, 11).with_event_limit(40_000) {
        match a.kind {
            k if StreamKind::Instruction.admits(k) => {
                icache.access(a.addr);
            }
            _ => {
                dcache.access(a.addr);
            }
        }
    }
    assert!(icache.stats().miss_rate() < 0.01);
    assert!(dcache.stats().miss_rate() > icache.stats().miss_rate() * 5.0);
}
