//! Differential accuracy harness for interval-sampled evaluation.
//!
//! Every estimate the sampled path produces is held honest against the
//! full-simulation oracle, at one **pinned** sampling configuration:
//! all ten benchmarks × {LRU, FIFO} × {1, 8} worker threads, every
//! design point of a three-cache grid. Two independent guarantees:
//!
//! 1. **Accuracy**: the sampled miss count of every design point stays
//!    within a pinned per-benchmark relative-error budget of the exact
//!    count — every budget at most [`GLOBAL_BUDGET`] (2%), most far
//!    tighter. The budgets are pinned worst cases, not aspirations: a
//!    regression that nudges any benchmark past its own historical
//!    worst fails the suite even if it stays under 2%.
//! 2. **Determinism**: the sampled grids are bit-identical across
//!    thread counts and across repeated runs — seeded clustering plus
//!    fixed-order accumulation leave nothing to scheduling.
//!
//! The pinned configuration trades speed for tightness (short traces
//! leave few intervals to cluster, and the sparse-miss points of this
//! grid make relative error a harsh metric); the replay-speedup story
//! at production defaults lives in the `sampling_speedup` bench, which
//! records its own measured error without gating on it.

use mhe::cache::{CacheConfig, Policy};
use mhe::core::evaluator::ReferenceEvaluation;
use mhe::prelude::*;
use mhe::workload::Benchmark;

mod common;

/// Trace length (scheduler events) of every harness evaluation.
const EVENTS: usize = 60_000;

/// No benchmark's pinned budget may exceed this: the ≤2 % acceptance
/// gate, enforced structurally in [`budgets_stay_under_the_global_gate`].
const GLOBAL_BUDGET: f64 = 0.02;

/// The pinned sampling configuration of the whole harness. Changing any
/// field re-tunes the accuracy story and must re-pin every budget.
fn pinned() -> SamplingConfig {
    SamplingConfig { interval_accesses: 8192, clusters: 88, warmup: 16384, ..Default::default() }
}

/// Pinned per-benchmark worst-case relative-error budgets (fraction of
/// the exact miss count, worst design point, worst policy). Measured at
/// the pinned configuration and rounded up with modest slack; the point
/// of the pin is that silent estimator regressions fail loudly.
fn budget(b: Benchmark) -> f64 {
    match b {
        Benchmark::Rasta => 0.010,
        Benchmark::Unepic => 0.018,
        _ => 0.005,
    }
}

/// The evaluation grid: deliberately includes sparse-miss points (1 KB
/// direct-mapped split caches, a 16 KB two-way unified cache) where
/// relative error is hardest to hold.
fn grids(policy: Policy) -> (Vec<CacheConfig>, Vec<CacheConfig>, Vec<CacheConfig>) {
    let p = |c: CacheConfig| c.with_policy(policy);
    (
        vec![p(CacheConfig::from_bytes(1024, 1, 32))],
        vec![p(CacheConfig::from_bytes(1024, 1, 32)), p(CacheConfig::from_bytes(4096, 2, 32))],
        vec![p(CacheConfig::from_bytes(16 * 1024, 2, 64))],
    )
}

/// Builds one evaluation of `b` under `policy`, sampled or exact, over
/// this harness's pinned grids.
fn build(
    b: Benchmark,
    policy: Policy,
    threads: usize,
    sampling: Option<SamplingConfig>,
) -> ReferenceEvaluation {
    common::build_eval(b, policy, threads, EVENTS, sampling, grids(policy))
}

/// Asserts every design point of `sampled` against `exact` under the
/// benchmark's pinned budget; returns the worst observed error.
fn assert_within_budget(
    b: Benchmark,
    policy: Policy,
    sampled: &ReferenceEvaluation,
    exact: &ReferenceEvaluation,
) -> f64 {
    let cap = budget(b);
    let mut worst = 0.0f64;
    for (name, got, want) in [
        ("icache", sampled.imeasured(), exact.imeasured()),
        ("dcache", sampled.dmeasured(), exact.dmeasured()),
        ("ucache", sampled.umeasured(), exact.umeasured()),
    ] {
        assert_eq!(got.len(), want.len(), "{b:?}/{policy}: {name} grid shape differs");
        for (config, &exact_misses) in want {
            let approx = got[config];
            let rel = (approx as f64 - exact_misses as f64).abs() / (exact_misses.max(1)) as f64;
            assert!(
                rel <= cap,
                "{b:?}/{policy}: {name} {config:?} sampled {approx} vs exact {exact_misses} \
                 ({rel:.4} > pinned {cap})"
            );
            worst = worst.max(rel);
        }
    }
    worst
}

/// Structural guard on the pins themselves: every per-benchmark budget
/// respects the ≤2 % acceptance gate.
#[test]
fn budgets_stay_under_the_global_gate() {
    for b in Benchmark::ALL {
        assert!(
            budget(b) <= GLOBAL_BUDGET,
            "{b:?}: pinned budget {} exceeds the global {GLOBAL_BUDGET} gate",
            budget(b)
        );
    }
}

/// The harness proper: accuracy against the oracle on every benchmark
/// and policy, bit-identical grids across 1/8 threads and repeat runs.
///
/// Debug builds cover a three-benchmark smoke subset (including both
/// worst-case pins); `scripts/ci.sh` runs the full ten-benchmark matrix
/// through this same test in release under its own wall-clock budget.
#[test]
fn sampled_grids_match_full_simulation_within_pinned_budgets() {
    const SMOKE: [Benchmark; 3] = [Benchmark::Epic, Benchmark::Rasta, Benchmark::Unepic];
    let benchmarks: &[Benchmark] = if cfg!(debug_assertions) { &SMOKE } else { &Benchmark::ALL };
    for &b in benchmarks {
        for policy in [Policy::Lru, Policy::Fifo] {
            let exact = build(b, policy, 8, None);
            let sampled = build(b, policy, 1, Some(pinned()));
            let worst = assert_within_budget(b, policy, &sampled, &exact);

            // Determinism: same grids from 8 workers and from a repeat
            // single-thread run, bit for bit.
            let threads8 = build(b, policy, 8, Some(pinned()));
            let repeat = build(b, policy, 1, Some(pinned()));
            for other in [&threads8, &repeat] {
                assert_eq!(sampled.imeasured(), other.imeasured(), "{b:?}/{policy}: icache");
                assert_eq!(sampled.dmeasured(), other.dmeasured(), "{b:?}/{policy}: dcache");
                assert_eq!(sampled.umeasured(), other.umeasured(), "{b:?}/{policy}: ucache");
            }

            let sm = sampled.metrics().sampling.expect("sampled build records metrics");
            assert!(sm.intervals > 0 && sm.clusters > 0);
            eprintln!(
                "{b:?}/{policy}: worst {worst:.4} (pinned {}), {} intervals -> {} clusters",
                budget(b),
                sm.intervals,
                sm.clusters
            );
        }
    }
}
