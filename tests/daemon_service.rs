//! Differential harness for the evaluation daemon.
//!
//! The contract under test: a frontier served over the daemon socket is
//! the *same bytes* an in-process batch run prints for the same spec —
//! at any client count, with admission queueing in play, under injected
//! worker panics, and across warm-cache repeats. Byte-identity is
//! checked on the rendered listing (what `spacewalker` prints) *and* on
//! the raw `f64` bit patterns carried by the wire report, so a
//! formatting coincidence cannot mask a numeric drift.
//!
//! Also covered: the liveness/stats surface, structured error codes for
//! failed requests (the session must stay warm afterwards), and the
//! graceful drain — after the flag flips, the accept loop stops, live
//! connections finish their frame, and fresh connects are refused.

use mhe::core::evaluator::EvalConfig;
use mhe::core::fault::{self, Fault, FaultPlan};
use mhe::prelude::*;
use mhe::spacewalk::service::proto::FrontierRequest;
use mhe::spacewalk::spec::Spec;
use mhe::spacewalk::{render_frontier, report_from, walker, ClientError};
use std::net::SocketAddr;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::thread::JoinHandle;

mod common;

/// Short but non-degenerate: full heuristic walks finish in seconds in
/// debug builds while still producing a multi-row frontier.
const EVENTS: usize = 20_000;

fn spec_text() -> String {
    common::demo_spec_text("unepic", EVENTS)
}

/// The in-process batch answer for `text` — the exact computation
/// `spacewalker` runs, ending in the same report/renderer pair.
fn batch_reference(text: &str) -> (String, Vec<(String, u64, u64)>) {
    let spec = Spec::parse(text).expect("demo spec parses");
    let eval = walker::prepare_evaluation(
        spec.benchmark.generate(),
        &ProcessorKind::P1111.mdes(),
        EvalConfig { events: spec.events, ..EvalConfig::default() },
        &spec.space,
    );
    let db = EvaluationCache::new();
    let frontier = walker::walk_system(&eval, &spec.space, spec.penalties, &db).expect("walks");
    let report = report_from(&eval, &frontier, &db);
    let bits = report
        .rows
        .iter()
        .map(|r| (r.processor.clone(), r.cost.to_bits(), r.time.to_bits()))
        .collect();
    (render_frontier(&report), bits)
}

/// Starts a daemon on an ephemeral loopback port; returns its address,
/// drain flag, and the serve-loop join handle.
fn start_daemon(limits: ServiceLimits) -> (SocketAddr, Arc<AtomicBool>, JoinHandle<()>) {
    let server =
        Server::bind("127.0.0.1:0", Arc::new(EvalService::new(limits))).expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let drain = server.drain_handle();
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));
    (addr, drain, handle)
}

fn frontier_request(heuristic: bool) -> FrontierRequest {
    FrontierRequest { spec_text: spec_text(), heuristic, sampling: None, policies: None }
}

/// The acceptance gate: four concurrent clients — half running the full
/// heuristic walk, half the plain walk — against limits that force
/// queueing, every served frontier byte-identical (rendered listing and
/// `f64` bits) to the in-process batch run, including a warm repeat.
#[test]
fn four_concurrent_clients_match_the_batch_frontier_byte_for_byte() {
    let (want_text, want_bits) = batch_reference(&spec_text());
    // max_inflight 2 < 4 clients: two requests queue at the gate, which
    // must delay them, not change or reject them.
    let (addr, drain, handle) = start_daemon(ServiceLimits { max_inflight: 2, max_queued: 8 });

    let workers: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::builder().addr(addr).connect().expect("connect");
                let heuristic = i < 2;
                let report = client.evaluate(frontier_request(heuristic)).expect("served walk");
                let bits: Vec<(String, u64, u64)> = report
                    .rows
                    .iter()
                    .map(|r| (r.processor.clone(), r.cost.to_bits(), r.time.to_bits()))
                    .collect();
                // Warm repeat on the same connection: session and cache
                // are hot, the answer must not move (the hit/compute
                // counters legitimately advance; the frontier may not).
                let again = client.evaluate(frontier_request(heuristic)).expect("warm repeat");
                assert_eq!(report.rows, again.rows, "client {i}: warm repeat moved the frontier");
                assert_eq!(report.sampling, again.sampling, "client {i}: provenance moved");
                (render_frontier(&report), bits)
            })
        })
        .collect();
    for (i, w) in workers.into_iter().enumerate() {
        let (text, bits) = w.join().expect("client thread");
        assert_eq!(text, want_text, "client {i}: rendered frontier differs from batch");
        assert_eq!(bits, want_bits, "client {i}: frontier bits differ from batch");
    }

    // All four specs share one warm session and one scope cache.
    let mut client = Client::builder().addr(addr).connect().expect("connect for stats");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.sessions, 1, "identical specs must share one session");
    assert!(stats.hits > 0, "warm repeats must hit the shared cache");
    drop(client);

    drain.store(true, std::sync::atomic::Ordering::SeqCst);
    handle.join().expect("drained serve loop");
}

/// An injected worker panic inside the served walk surfaces as a
/// structured exit-code-4 error on the client — and the session stays
/// warm: the disarmed retry serves the exact batch answer.
#[test]
fn injected_panic_is_structured_and_the_session_recovers() {
    let _serial = fault::injection_lock().lock().unwrap();
    let (want_text, _) = batch_reference(&spec_text());
    let (addr, drain, handle) = start_daemon(ServiceLimits { max_inflight: 1, max_queued: 4 });
    let mut client = Client::builder().addr(addr).connect().expect("connect");

    // Build the session warm first (injection targets the *walk* phase;
    // a cold first request would spend the fault during the heuristic
    // prewarm of the same request and still succeed — we want the error
    // path, deterministically).
    let baseline = client.evaluate(frontier_request(false)).expect("cold walk");
    assert_eq!(render_frontier(&baseline), want_text);

    {
        let _guard = fault::arm(FaultPlan::new(vec![Fault::PanicTask { task: 0 }]));
        let err = client
            .evaluate(FrontierRequest {
                spec_text: spec_text(),
                heuristic: false,
                sampling: None,
                // A policy override forces fresh metrics, so the armed
                // walk cannot be answered entirely from cache hits.
                policies: Some(vec![Policy::Fifo]),
            })
            .expect_err("the injected panic must fail the request");
        match &err {
            ClientError::Remote { code, message } => {
                assert_eq!(*code, mhe::core::EXIT_WORKER_FAILURE, "{err}");
                assert!(message.contains("injected fault"), "{message}");
            }
            other => panic!("expected Remote worker failure, got {other:?}"),
        }
    }

    // Disarmed: the same connection, the same daemon, the exact batch
    // bytes — the panic poisoned nothing.
    let recovered = client.evaluate(frontier_request(false)).expect("recovered walk");
    assert_eq!(render_frontier(&recovered), want_text, "session must stay warm past a panic");

    drop(client);
    drain.store(true, std::sync::atomic::Ordering::SeqCst);
    handle.join().expect("drained serve loop");
}

/// Liveness and counters over the wire.
#[test]
fn ping_and_stats_round_trip() {
    let (addr, drain, handle) = start_daemon(ServiceLimits::default());
    let mut client = Client::builder().addr(addr).connect().expect("connect");
    client.ping().expect("pong");
    let cold = client.stats().expect("stats");
    assert_eq!((cold.sessions, cold.entries, cold.computes), (0, 0, 0));

    client.evaluate(frontier_request(false)).expect("walk");
    let warm = client.stats().expect("stats after walk");
    assert_eq!(warm.sessions, 1);
    assert!(warm.entries > 0 && warm.computes > 0);

    drop(client);
    drain.store(true, std::sync::atomic::Ordering::SeqCst);
    handle.join().expect("drained serve loop");
}

/// Graceful drain: the serve loop joins its connections and returns;
/// fresh connects are refused afterwards.
#[test]
fn drain_stops_accepting_and_joins_cleanly() {
    let (addr, drain, handle) = start_daemon(ServiceLimits::default());
    let mut client = Client::builder().addr(addr).connect().expect("connect before drain");
    client.ping().expect("pong before drain");

    drain.store(true, std::sync::atomic::Ordering::SeqCst);
    handle.join().expect("serve loop exits cleanly on drain");

    match Client::builder().addr(addr).connect() {
        Err(e @ ClientError::Unavailable(_)) => {
            assert_eq!(e.exit_code(), mhe::core::EXIT_SERVER_UNAVAILABLE);
        }
        Err(other) => panic!("expected Unavailable, got {other:?}"),
        Ok(_) => panic!("a drained daemon must not accept new connections"),
    }
}

/// The deprecated thin wrappers (`Client::connect`, `Client::frontier`)
/// must keep working verbatim until removal — they are the published
/// pre-subcommand API.
#[test]
#[allow(deprecated)]
fn deprecated_client_wrappers_still_serve_the_same_bytes() {
    let (want_text, _) = batch_reference(&spec_text());
    let (addr, drain, handle) = start_daemon(ServiceLimits::default());
    let mut client = Client::connect(addr).expect("deprecated connect");
    let report = client.frontier(frontier_request(false)).expect("deprecated frontier");
    assert_eq!(render_frontier(&report), want_text, "wrapper path changed the answer");
    drop(client);
    drain.store(true, std::sync::atomic::Ordering::SeqCst);
    handle.join().expect("drained serve loop");
}

/// Version negotiation: a client announcing protocol v1 gets a
/// *structured* rejection (exit-code-2 error naming both versions), not
/// a hang or a slammed socket.
#[test]
fn v1_client_is_rejected_with_a_structured_error() {
    use mhe::spacewalk::service::proto;
    use std::io::{Read, Write};

    let (addr, drain, handle) = start_daemon(ServiceLimits::default());
    let mut stream = std::net::TcpStream::connect(addr).expect("tcp connect");
    stream.set_read_timeout(Some(std::time::Duration::from_secs(10))).expect("timeout");

    // The server announces first: magic + version + feature bits.
    let mut hello = [0u8; proto::HANDSHAKE_LEN];
    stream.read_exact(&mut hello).expect("server announcement");
    let server = proto::Handshake::decode(&hello).expect("well-formed announcement");
    assert_eq!(server.version, proto::VERSION);
    assert_ne!(server.features & proto::FEATURE_FRONTIER, 0, "daemon must offer frontiers");

    // Reply as a version-1 client.
    let v1 = proto::Handshake { version: 1, features: 0 };
    stream.write_all(&v1.encode()).expect("v1 announcement");

    let payload = proto::read_frame(&mut stream).expect("structured rejection frame");
    match proto::decode_response(&payload).expect("decodable response") {
        proto::Response::Error { code, message } => {
            assert_eq!(code, mhe::core::EXIT_BAD_CONFIG);
            assert!(message.contains("unsupported protocol version 1"), "{message}");
        }
        other => panic!("expected a version rejection, got {other:?}"),
    }

    drop(stream);
    drain.store(true, std::sync::atomic::Ordering::SeqCst);
    handle.join().expect("drained serve loop");
}
