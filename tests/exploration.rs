//! Integration tests of the exploration layer: spec file → spacewalker →
//! Pareto frontier, end to end.

use mhe::prelude::*;
use mhe::spacewalk::spec::Spec;
use mhe::spacewalk::walker;

const SPEC: &str = r#"
[processors]
kinds = 1111 3221

[icache]
sizes_kb = 1 2 4
assocs = 1 2
line_bytes = 32

[dcache]
sizes_kb = 1 4
assocs = 1
line_bytes = 32

[ucache]
sizes_kb = 16 64
assocs = 2
line_bytes = 64

[eval]
benchmark = unepic
events = 40000
"#;

#[test]
fn spec_to_frontier_end_to_end() {
    let spec = Spec::parse(SPEC).expect("valid spec");
    let eval = walker::prepare_evaluation(
        spec.benchmark.generate(),
        &ProcessorKind::P1111.mdes(),
        EvalConfig { events: spec.events, ..EvalConfig::default() },
        &spec.space,
    );
    let db = EvaluationCache::new();
    let frontier = walker::walk_system(&eval, &spec.space, spec.penalties, &db).expect("walk");
    assert!(!frontier.is_empty());
    // Frontier correctness: no member dominates another.
    let pts = frontier.points();
    for (i, a) in pts.iter().enumerate() {
        for (j, b) in pts.iter().enumerate() {
            if i != j {
                assert!(
                    !(a.cost <= b.cost && a.time <= b.time),
                    "frontier member dominated: {:?} vs {:?}",
                    (a.cost, a.time),
                    (b.cost, b.time)
                );
            }
        }
    }
    // Every frontier memory design satisfies inclusion.
    for p in pts {
        assert!(p.design.memory.design().satisfies_inclusion());
    }
}

#[test]
fn frontier_shrinks_when_memory_is_free() {
    // With zero penalties, memory no longer differentiates performance;
    // the frontier should collapse to (roughly) one design per processor:
    // the cheapest memory with the fastest compute at each cost level.
    let spec = Spec::parse(SPEC).expect("valid spec");
    let eval = walker::prepare_evaluation(
        spec.benchmark.generate(),
        &ProcessorKind::P1111.mdes(),
        EvalConfig { events: spec.events, ..EvalConfig::default() },
        &spec.space,
    );
    let db = EvaluationCache::new();
    let priced = walk_len(&eval, &spec, Penalties::default(), &db);
    let free = walk_len(&eval, &spec, Penalties { l1_miss: 0, l2_miss: 0 }, &db);
    assert!(free <= spec.space.processors.len());
    assert!(priced >= free);
}

fn walk_len(
    eval: &ReferenceEvaluation,
    spec: &Spec,
    penalties: Penalties,
    db: &EvaluationCache,
) -> usize {
    walker::walk_system(eval, &spec.space, penalties, db).expect("walk").len()
}

#[test]
fn evaluation_cache_round_trips_through_disk() {
    let spec = Spec::parse(SPEC).expect("valid spec");
    let eval = walker::prepare_evaluation(
        spec.benchmark.generate(),
        &ProcessorKind::P1111.mdes(),
        EvalConfig { events: spec.events, ..EvalConfig::default() },
        &spec.space,
    );
    let db = EvaluationCache::new();
    let a = walker::walk_system(&eval, &spec.space, spec.penalties, &db).expect("walk");
    let path = std::env::temp_dir().join(format!("mhe_exploration_db_{}.mhec", std::process::id()));
    db.save(&path).expect("save");
    let reloaded = EvaluationCache::load(&path).expect("load");
    let b = walker::walk_system(&eval, &spec.space, spec.penalties, &reloaded).expect("walk");
    // A warm cache must reproduce the frontier without recomputation.
    assert_eq!(a.len(), b.len());
    let (_, computes) = reloaded.stats();
    assert_eq!(computes, 0, "warm cache must not recompute");
    std::fs::remove_file(path).ok();
}
