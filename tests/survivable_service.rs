//! Survivability harness for the evaluation service and daemon.
//!
//! The contract under test: the daemon's warm state is *bounded* (TTL +
//! LRU session eviction, with optional on-disk persistence so evicted
//! scopes answer warm after a restart), its requests are *cancellable*
//! (a `Cancel` frame or a client disconnect aborts the in-flight sweep
//! at a task boundary, frees the admission slot, and a rerun of the same
//! request is byte-identical), and its ports are *guarded* (a shared
//! token proves clients before any request is served; bad or missing
//! tokens map to the documented exit code 6).
//!
//! Also covered: admission-gate edge cases (queue-full rejection without
//! blocking, slot release on panic and on cancellation) and the
//! version/feature/build triple both services report over `stats`.

use mhe::core::evaluator::EvalConfig;
use mhe::core::fault::{self, Fault, FaultPlan};
use mhe::core::CancelToken;
use mhe::prelude::*;
use mhe::spacewalk::service::proto::{self, FrontierRequest, Request, Response};
use mhe::spacewalk::spec::Spec;
use mhe::spacewalk::{render_frontier, report_from, walker, AdmissionGate, ClientError};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

mod common;

/// Matches the daemon suite: long enough that a cancel frame lands
/// mid-request, short enough for debug-build suites.
const EVENTS: usize = 20_000;

/// Smaller specs for the session-churn tests, where each distinct spec
/// costs one reference simulation.
const SOAK_EVENTS: usize = 4_000;

fn frontier_request(text: &str) -> FrontierRequest {
    FrontierRequest {
        spec_text: text.to_string(),
        heuristic: false,
        sampling: None,
        policies: None,
    }
}

/// The in-process batch answer for `text`: rendered listing + `f64` bits.
fn batch_reference(text: &str) -> (String, Vec<(String, u64, u64)>) {
    let spec = Spec::parse(text).expect("spec parses");
    let eval = walker::prepare_evaluation(
        spec.benchmark.generate(),
        &ProcessorKind::P1111.mdes(),
        EvalConfig { events: spec.events, ..EvalConfig::default() },
        &spec.space,
    );
    let db = EvaluationCache::new();
    let frontier = walker::walk_system(&eval, &spec.space, spec.penalties, &db).expect("walks");
    let report = report_from(&eval, &frontier, &db);
    let bits = report
        .rows
        .iter()
        .map(|r| (r.processor.clone(), r.cost.to_bits(), r.time.to_bits()))
        .collect();
    (render_frontier(&report), bits)
}

fn report_bits(report: &proto::FrontierReport) -> Vec<(String, u64, u64)> {
    report.rows.iter().map(|r| (r.processor.clone(), r.cost.to_bits(), r.time.to_bits())).collect()
}

/// Unwraps a service response into its frontier report.
fn expect_frontier(response: Response) -> proto::FrontierReport {
    match response {
        Response::Frontier(report) => report,
        other => panic!("expected a frontier, got {other:?}"),
    }
}

/// Starts a daemon over `service`, optionally guarded by `token`.
fn start_daemon_with(
    service: EvalService,
    token: Option<&str>,
) -> (SocketAddr, Arc<AtomicBool>, JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", Arc::new(service))
        .expect("bind loopback")
        .with_auth_token(token.map(str::to_string));
    let addr = server.local_addr().expect("bound address");
    let drain = server.drain_handle();
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));
    (addr, drain, handle)
}

/// A raw protocol socket past the v3 handshake (no auth), for driving
/// frame sequences the typed client deliberately cannot produce.
fn raw_session(addr: SocketAddr, read_timeout: Duration) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("tcp connect");
    stream.set_read_timeout(Some(read_timeout)).expect("read timeout");
    stream.set_nodelay(true).expect("nodelay");
    let server = proto::client_hello(&mut stream, proto::FEATURE_FRONTIER).expect("handshake");
    assert_ne!(server.features & proto::FEATURE_FRONTIER, 0, "daemon must offer frontiers");
    stream
}

fn send_request(stream: &mut TcpStream, request: &Request) {
    proto::write_frame(stream, &proto::encode_request(request)).expect("send frame");
}

fn read_response(stream: &mut TcpStream) -> Response {
    let payload = proto::read_frame(stream).expect("response frame");
    proto::decode_response(&payload).expect("decodable response")
}

/// The tentpole soak: five distinct specs against a two-session cap.
/// The warm-session count never exceeds the cap, the overflow is
/// counted as evictions, and an evicted spec reruns correctly (the
/// bound trades memory for recompute, never for wrong answers).
#[test]
fn session_count_stays_bounded_under_spec_churn() {
    let service = EvalService::with_config(ServiceConfig {
        max_sessions: Some(2),
        session_ttl: None,
        ..ServiceConfig::default()
    });

    let specs: Vec<String> =
        (0..5).map(|i| common::demo_spec_text("unepic", SOAK_EVENTS + i)).collect();
    let mut first_answer = None;
    for (i, text) in specs.iter().enumerate() {
        let report = expect_frontier(service.respond(Request::Frontier(frontier_request(text))));
        assert!(!report.rows.is_empty(), "spec {i}: empty frontier");
        if i == 0 {
            first_answer = Some(report_bits(&report));
        }
        let stats = service.stats();
        assert!(
            stats.sessions <= 2,
            "after spec {i}: {} warm sessions exceed the cap of 2",
            stats.sessions
        );
    }
    let stats = service.stats();
    assert!(
        stats.evictions >= 3,
        "5 specs through a 2-session cap must evict at least 3, saw {}",
        stats.evictions
    );

    // The first (long-evicted) spec still answers — and identically.
    let rerun = expect_frontier(service.respond(Request::Frontier(frontier_request(&specs[0]))));
    assert_eq!(Some(report_bits(&rerun)), first_answer, "evicted spec must rerun to the same bits");
}

/// A zero TTL expires every idle session as soon as another request
/// touches the service; the touched session itself is never evicted.
#[test]
fn zero_ttl_expires_idle_sessions() {
    let service = EvalService::with_config(ServiceConfig {
        session_ttl: Some(Duration::ZERO),
        max_sessions: None,
        ..ServiceConfig::default()
    });
    let a = common::demo_spec_text("unepic", SOAK_EVENTS);
    let b = common::demo_spec_text("unepic", SOAK_EVENTS + 1);

    expect_frontier(service.respond(Request::Frontier(frontier_request(&a))));
    assert_eq!(service.stats().sessions, 1);

    // Touching B runs the eviction pass: A is expired, B is in use.
    expect_frontier(service.respond(Request::Frontier(frontier_request(&b))));
    let stats = service.stats();
    assert_eq!(stats.sessions, 1, "the expired session must be gone, the touched one kept");
    assert!(stats.evictions >= 1, "expiry must be counted: {stats:?}");
}

/// Persistence closes the eviction loop: a service with a `--db`
/// directory saves its scope cache, and a *fresh* service over the same
/// directory answers the same spec without a single recompute.
#[test]
fn persisted_scope_cache_survives_a_service_restart() {
    let dir = std::env::temp_dir().join(format!("mhe-survive-db-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let text = common::demo_spec_text("unepic", SOAK_EVENTS);
    let config = ServiceConfig { persist_dir: Some(dir.clone()), ..ServiceConfig::default() };

    let service = EvalService::with_config(config.clone());
    let first = expect_frontier(service.respond(Request::Frontier(frontier_request(&text))));
    assert!(service.stats().computes > 0, "the cold run must compute");
    assert!(service.persist_all() >= 1, "the scope cache must be saved");
    drop(service);

    let restarted = EvalService::with_config(config);
    let second = expect_frontier(restarted.respond(Request::Frontier(frontier_request(&text))));
    let stats = restarted.stats();
    assert_eq!(stats.computes, 0, "a restart over the db must answer entirely warm: {stats:?}");
    assert!(stats.hits > 0, "the preloaded cache must be hit: {stats:?}");
    assert_eq!(report_bits(&first), report_bits(&second), "persisted answer drifted");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The auth gate on the daemon port: no token and a wrong token are both
/// turned away with the documented exit code 6 before any request is
/// served; the right token is admitted and serves the exact batch bytes.
/// The tokened `stats` reply carries the version/feature/build triple
/// with `FEATURE_AUTH` announced.
#[test]
fn daemon_auth_rejects_bad_tokens_and_serves_good_ones_identically() {
    let text = common::demo_spec_text("unepic", SOAK_EVENTS);
    let (want_render, want_bits) = batch_reference(&text);
    let (addr, drain, handle) =
        start_daemon_with(EvalService::new(ServiceLimits::default()), Some("open-sesame"));

    // Tokenless: the client refuses to answer the challenge.
    match Client::builder().addr(addr).connect() {
        Err(e @ ClientError::Remote { code, .. }) => {
            assert_eq!(code, mhe::core::EXIT_UNAUTHORIZED);
            assert_eq!(e.exit_code(), mhe::core::EXIT_UNAUTHORIZED);
            assert!(e.to_string().contains("auth token"), "{e}");
        }
        other => panic!("tokenless connect must fail with exit code 6, got {other:?}"),
    }

    // Wrong token: the server rejects the proof.
    match Client::builder().addr(addr).auth_token("swordfish").connect() {
        Err(ClientError::Remote { code, message }) => {
            assert_eq!(code, mhe::core::EXIT_UNAUTHORIZED);
            assert!(message.contains("authentication failed"), "{message}");
        }
        other => panic!("wrong token must fail with exit code 6, got {other:?}"),
    }

    // Right token: full service, byte-identical to batch.
    let mut client =
        Client::builder().addr(addr).auth_token("open-sesame").connect().expect("tokened connect");
    assert_ne!(client.features() & proto::FEATURE_AUTH, 0, "server must announce FEATURE_AUTH");
    let report = client.evaluate(frontier_request(&text)).expect("authed walk");
    assert_eq!(render_frontier(&report), want_render, "authed frontier differs from batch");
    assert_eq!(report_bits(&report), want_bits, "authed frontier bits differ from batch");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.version, proto::VERSION);
    assert_ne!(stats.features & proto::FEATURE_FRONTIER, 0, "{stats:?}");
    assert_ne!(stats.features & proto::FEATURE_AUTH, 0, "{stats:?}");
    assert!(!stats.build.is_empty(), "stats must carry the build version");

    drop(client);
    drain.store(true, std::sync::atomic::Ordering::SeqCst);
    handle.join().expect("drained serve loop");
}

/// An open (tokenless) daemon reports the same triple without
/// `FEATURE_AUTH` — feature bits describe the connection, not a wish.
#[test]
fn open_daemon_stats_report_version_features_and_build() {
    let (addr, drain, handle) = start_daemon_with(EvalService::new(ServiceLimits::default()), None);
    let mut client = Client::builder().addr(addr).connect().expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.version, proto::VERSION);
    assert_eq!(stats.features, proto::FEATURE_FRONTIER);
    assert_eq!(stats.build, env!("CARGO_PKG_VERSION"));
    drop(client);
    drain.store(true, std::sync::atomic::Ordering::SeqCst);
    handle.join().expect("drained serve loop");
}

/// A `Cancel` frame aborts the in-flight walk with the documented exit
/// code 7 — and the rerun on the same connection completes from the
/// partially-warmed cache, byte-identical to the batch answer.
///
/// Whether the cancel lands before the walk finishes is a race against
/// the machine, so each attempt uses a fresh spec (a cold session) and a
/// shrinking pre-cancel delay until one cancel wins; a cancel that loses
/// every race on every delay fails the test.
#[test]
fn cancel_frame_aborts_the_walk_and_the_rerun_is_bit_identical() {
    let (addr, drain, handle) =
        start_daemon_with(EvalService::new(ServiceLimits { max_inflight: 1, max_queued: 0 }), None);

    let delays_ms = [200u64, 50, 10, 2, 0, 0];
    let mut won = None;
    for (attempt, delay) in delays_ms.into_iter().enumerate() {
        // A distinct event count per attempt means a distinct session:
        // every race starts from a cold (simulate + walk) request.
        let text = common::demo_spec_text("unepic", EVENTS + attempt);
        let mut stream = raw_session(addr, Duration::from_secs(300));
        send_request(&mut stream, &Request::Frontier(frontier_request(&text)));
        std::thread::sleep(Duration::from_millis(delay));
        send_request(&mut stream, &Request::Cancel);
        match read_response(&mut stream) {
            Response::Error { code, message } => {
                assert_eq!(code, mhe::core::EXIT_CANCELLED, "cancel must map to exit code 7");
                assert!(message.contains("cancelled"), "{message}");
                won = Some((text, stream));
                break;
            }
            // The walk beat the cancel to the finish line: legal, just
            // not the interleaving under test — try again, faster.
            Response::Frontier(_) => continue,
            other => panic!("expected cancelled-error or frontier, got {other:?}"),
        }
    }
    let (text, mut stream) = won.expect("no cancel beat the walk even with zero delay");

    // Same connection, same request: whatever the cancelled walk already
    // cached is reused, and the answer must not move.
    let (want_render, want_bits) = batch_reference(&text);
    send_request(&mut stream, &Request::Frontier(frontier_request(&text)));
    let report = expect_frontier(read_response(&mut stream));
    assert_eq!(render_frontier(&report), want_render, "post-cancel rerun differs from batch");
    assert_eq!(report_bits(&report), want_bits, "post-cancel rerun bits differ from batch");

    drop(stream);
    drain.store(true, std::sync::atomic::Ordering::SeqCst);
    handle.join().expect("drained serve loop");
}

/// Disconnect-cancellation: a client that vanishes mid-request must not
/// pin the daemon's only admission slot. A second client polls until the
/// abandoned sweep is reaped, then gets the exact batch answer.
#[test]
fn client_disconnect_cancels_the_sweep_and_frees_the_slot() {
    let text = common::demo_spec_text("unepic", EVENTS);
    let (want_render, want_bits) = batch_reference(&text);
    let (addr, drain, handle) =
        start_daemon_with(EvalService::new(ServiceLimits { max_inflight: 1, max_queued: 0 }), None);

    {
        let mut doomed = raw_session(addr, Duration::from_secs(10));
        send_request(&mut doomed, &Request::Frontier(frontier_request(&text)));
        std::thread::sleep(Duration::from_millis(200));
        // Vanish without reading the response.
    }

    // With max_inflight 1 and no queue, this only ever succeeds once the
    // abandoned request's slot is released — a leak fails the deadline.
    let deadline = Instant::now() + Duration::from_secs(120);
    let report = loop {
        let mut client = Client::builder().addr(addr).connect().expect("connect");
        match client.evaluate(frontier_request(&text)) {
            Ok(report) => break report,
            Err(ClientError::Rejected(_)) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(other) => panic!("unexpected failure while polling for the slot: {other}"),
        }
    };
    assert_eq!(render_frontier(&report), want_render, "post-disconnect walk differs from batch");
    assert_eq!(report_bits(&report), want_bits, "post-disconnect walk bits differ from batch");

    drain.store(true, std::sync::atomic::Ordering::SeqCst);
    handle.join().expect("drained serve loop");
}

/// The gate itself: a full queue turns `try_admit` into an immediate
/// `None` (never a block), and dropping a permit reopens the gate.
#[test]
fn admission_gate_rejects_a_full_queue_without_blocking() {
    let gate = AdmissionGate::new(ServiceLimits { max_inflight: 1, max_queued: 0 });
    let permit = gate.try_admit().expect("first admit");
    assert_eq!(gate.occupancy(), (1, 0));

    // Queue of 0: the second claim must return None immediately.
    let started = Instant::now();
    assert!(gate.try_admit().is_none(), "full gate must reject");
    assert!(started.elapsed() < Duration::from_secs(5), "queue-full rejection must not block");

    drop(permit);
    assert_eq!(gate.occupancy(), (0, 0), "dropping the permit must free the slot");
    let reopened = gate.try_admit().expect("slot reusable after release");
    drop(reopened);
}

/// The slot frees on *every* exit path: a panicking request (injected
/// worker fault) and a cancelled request both release their permit, and
/// the disarmed rerun serves the exact answer.
#[test]
fn admission_slot_is_released_on_panic_and_on_cancellation() {
    let _serial = fault::injection_lock().lock().unwrap();
    let text = common::demo_spec_text("unepic", SOAK_EVENTS);
    let service = EvalService::new(ServiceLimits { max_inflight: 1, max_queued: 0 });

    // Warm the session first so the injected fault lands in the walk.
    let baseline = expect_frontier(service.respond(Request::Frontier(frontier_request(&text))));

    {
        let _guard = fault::arm(FaultPlan::new(vec![Fault::PanicTask { task: 0 }]));
        let fresh = FrontierRequest {
            policies: Some(vec![Policy::Fifo]), // force fresh metrics past the warm cache
            ..frontier_request(&text)
        };
        match service.respond(Request::Frontier(fresh)) {
            Response::Error { code, message } => {
                assert_eq!(code, mhe::core::EXIT_WORKER_FAILURE);
                assert!(message.contains("injected fault"), "{message}");
            }
            other => panic!("expected the injected panic, got {other:?}"),
        }
    }
    assert_eq!(service.gate().occupancy(), (0, 0), "panic must release the admission slot");

    let cancelled = CancelToken::new();
    cancelled.cancel();
    match service.respond_with_cancel(Request::Frontier(frontier_request(&text)), Some(cancelled)) {
        Response::Error { code, .. } => assert_eq!(code, mhe::core::EXIT_CANCELLED),
        other => panic!("expected the cancelled-request error, got {other:?}"),
    }
    assert_eq!(service.gate().occupancy(), (0, 0), "cancellation must release the admission slot");

    let rerun = expect_frontier(service.respond(Request::Frontier(frontier_request(&text))));
    assert_eq!(
        report_bits(&baseline),
        report_bits(&rerun),
        "the service must stay warm and identical past panic and cancellation"
    );
}
