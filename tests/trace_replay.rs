//! Differential test: captured-trace replay reproduces the in-memory
//! evaluation bit for bit.
//!
//! For every benchmark, the reference trace is captured to a compact
//! `.mtr` file and replayed through [`ReferenceEvaluation::replay_file`]
//! at 1 and 8 worker threads. The replayed evaluation must agree with the
//! in-memory build exactly — identical measured miss maps and
//! bit-identical dilated estimates — and the binary capture must be at
//! least 4x smaller than the equivalent `din` text. A second test checks
//! the `din` replay path and that the chunk size is invisible to results.

use mhe::prelude::*;
use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;

const EVENTS: usize = 10_000;

fn spaces() -> (Vec<CacheConfig>, Vec<CacheConfig>, Vec<CacheConfig>) {
    (
        vec![CacheConfig::from_bytes(1024, 1, 32), CacheConfig::from_bytes(16 * 1024, 2, 32)],
        vec![CacheConfig::from_bytes(1024, 1, 32)],
        vec![CacheConfig::from_bytes(16 * 1024, 2, 64)],
    )
}

fn config(threads: usize, chunk_accesses: usize) -> EvalConfig {
    EvalConfig { events: EVENTS, threads, chunk_accesses, ..EvalConfig::default() }
}

fn build_in_memory(b: Benchmark) -> ReferenceEvaluation {
    let (ic, dc, uc) = spaces();
    ReferenceEvaluation::build(
        b.generate(),
        &ProcessorKind::P1111.mdes(),
        config(1, 1 << 16),
        &ic,
        &dc,
        &uc,
    )
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mhe_replay_test_{}_{name}", std::process::id()))
}

/// The full bit-identity contract: measured maps equal as integers,
/// estimates equal to the last mantissa bit.
fn assert_identical(mem: &ReferenceEvaluation, rep: &ReferenceEvaluation, tag: &str) {
    assert_eq!(mem.imeasured(), rep.imeasured(), "imeasured {tag}");
    assert_eq!(mem.dmeasured(), rep.dmeasured(), "dmeasured {tag}");
    assert_eq!(mem.umeasured(), rep.umeasured(), "umeasured {tag}");
    let (ic, _, uc) = spaces();
    for d in [1.0, 1.6, 2.0, 3.0] {
        for &cfg in &ic {
            let a = mem.estimate_icache_misses(cfg, d).unwrap();
            let b = rep.estimate_icache_misses(cfg, d).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "icache {cfg} @ d={d} {tag}");
        }
        for &cfg in &uc {
            let a = mem.estimate_ucache_misses(cfg, d).unwrap();
            let b = rep.estimate_ucache_misses(cfg, d).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "ucache {cfg} @ d={d} {tag}");
        }
    }
}

#[test]
fn mtr_replay_is_bit_identical_for_every_benchmark() {
    let (ic, dc, uc) = spaces();
    for b in Benchmark::ALL {
        let name = b.name();
        let mem = build_in_memory(b);
        let path = temp_path(&format!("{}.mtr", name.replace('.', "_")));
        let stats = mem.capture_mtr(BufWriter::new(File::create(&path).unwrap())).unwrap();
        assert_eq!(stats.accesses, mem.metrics().trace_len, "{name}: captured whole trace");
        assert!(
            stats.compression_ratio() >= 4.0,
            "{name}: .mtr only {:.2}x smaller than din",
            stats.compression_ratio()
        );
        for threads in [1, 8] {
            let rep = ReferenceEvaluation::replay_file(
                b.generate(),
                &ProcessorKind::P1111.mdes(),
                config(threads, 1 << 16),
                &path,
                &ic,
                &dc,
                &uc,
            )
            .unwrap();
            assert_identical(&mem, &rep, &format!("[{name} mtr @ {threads} threads]"));
            let replay = rep.metrics().replay.expect("file replay records metrics");
            assert_eq!(replay.accesses, mem.metrics().trace_len, "{name}");
            assert_eq!(replay.bytes_read, stats.bytes, "{name}");
            assert!(replay.chunks > 0, "{name}");
            assert!(
                replay.compression_ratio() >= 4.0,
                "{name}: replay reports {:.2}x",
                replay.compression_ratio()
            );
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn din_replay_matches_and_chunk_size_is_invisible() {
    let b = Benchmark::Unepic;
    let mem = build_in_memory(b);
    let path = temp_path("unepic.din");
    mem.capture_din(File::create(&path).unwrap()).unwrap();
    let (ic, dc, uc) = spaces();
    // A prime chunk size exercises ragged frame boundaries; the default
    // must give the same bits.
    for chunk_accesses in [977, 1 << 16] {
        let rep = ReferenceEvaluation::replay_file(
            b.generate(),
            &ProcessorKind::P1111.mdes(),
            config(2, chunk_accesses),
            &path,
            &ic,
            &dc,
            &uc,
        )
        .unwrap();
        assert_identical(&mem, &rep, &format!("[din chunk={chunk_accesses}]"));
        let replay = rep.metrics().replay.expect("file replay records metrics");
        // din is the uncompressed baseline, so its ratio is exactly 1.
        assert_eq!(replay.bytes_read, replay.din_bytes);
        assert_eq!(replay.accesses, mem.metrics().trace_len);
    }
    std::fs::remove_file(&path).ok();
}
