//! Fault-injection acceptance suite.
//!
//! Every [`FaultPlan`] scenario — bit flip, truncation, short read,
//! ENOSPC, worker panic — must surface as a structured error with
//! context, exactly as the binaries report it (exit 3 for corrupt input,
//! exit 4 for worker failures). Zero panics may escape `ParallelSweep`.
//! Finally, a killed exploration resumed from its crash-safe checkpoint
//! must produce a Pareto frontier and `EvaluationCache` contents
//! bit-identical to an uninterrupted run, at 1 and 8 worker threads.
//!
//! Tests that arm the process-global fault plan serialize on
//! [`fault::injection_lock`].

use mhe::cache::{Penalties, Policy};
use mhe::core::evaluator::{EvalConfig, ReferenceEvaluation};
use mhe::core::fault::{self, Fault, FaultPlan, FaultyReader, FaultyWriter};
use mhe::core::{MheError, ParallelSweep, RetryPolicy};
use mhe::spacewalk::walker::{self, prepare_evaluation};
use mhe::spacewalk::{CacheSpace, Checkpointer, EvaluationCache, SystemSpace};
use mhe::trace::codec::{read_mtr, write_mtr, TraceWriter};
use mhe::trace::Access;
use mhe::vliw::ProcessorKind;
use mhe::workload::Benchmark;
use std::io::ErrorKind;
use std::path::PathBuf;

/// A small but real `.mtr` byte stream: the reference trace of a tiny
/// evaluation, captured in memory.
fn valid_mtr() -> Vec<u8> {
    let eval = tiny_eval(&small_space(), 1);
    let mut bytes = Vec::new();
    eval.capture_mtr(&mut bytes).expect("in-memory capture cannot fail");
    bytes
}

fn small_space() -> SystemSpace {
    SystemSpace {
        processors: vec![ProcessorKind::P1111.mdes(), ProcessorKind::P3221.mdes()],
        icache: CacheSpace {
            sizes_bytes: vec![1024, 4096],
            assocs: vec![1, 2],
            line_bytes: vec![32],
            ports: vec![1],
            policies: vec![Policy::Lru],
        },
        dcache: CacheSpace {
            sizes_bytes: vec![1024, 4096],
            assocs: vec![1],
            line_bytes: vec![32],
            ports: vec![1],
            policies: vec![Policy::Lru],
        },
        ucache: CacheSpace {
            sizes_bytes: vec![16 << 10, 64 << 10],
            assocs: vec![2],
            line_bytes: vec![64],
            ports: vec![1],
            policies: vec![Policy::Lru],
        },
    }
}

fn tiny_eval(space: &SystemSpace, threads: usize) -> ReferenceEvaluation {
    let mut eval = prepare_evaluation(
        Benchmark::Unepic.generate(),
        &ProcessorKind::P1111.mdes(),
        EvalConfig { events: 20_000, ..EvalConfig::default() },
        space,
    );
    eval.override_worker_threads(threads);
    eval
}

/// Decodes `bytes` through a [`FaultyReader`] armed with `plan`, mapping
/// failures to [`MheError::CorruptInput`] exactly as the binaries do at
/// their file boundaries.
fn decode_with_faults(bytes: &[u8], plan: &FaultPlan) -> Result<Vec<Access>, MheError> {
    read_mtr(FaultyReader::new(bytes, plan))
        .map_err(|e| MheError::corrupt("app.mtr", e.to_string()))
}

#[test]
fn bit_flips_surface_as_corrupt_input_with_context() {
    let bytes = valid_mtr();
    // Flip one bit in the magic, the frame header, and deep in a payload.
    for byte in [0u64, 7, bytes.len() as u64 / 2, bytes.len() as u64 - 1] {
        let plan = FaultPlan::new(vec![Fault::BitFlip { byte, mask: 0x10 }]);
        let err = decode_with_faults(&bytes, &plan)
            .expect_err(&format!("flip at byte {byte} must not decode"));
        assert!(matches!(err, MheError::CorruptInput { .. }), "byte {byte}: {err:?}");
        assert_eq!(err.exit_code(), 3, "corrupt input exits 3");
        assert!(err.to_string().contains("app.mtr"), "error names the file: {err}");
    }
}

#[test]
fn truncation_surfaces_as_corrupt_input_never_panics() {
    let bytes = valid_mtr();
    // Every prefix of a valid file must fail structurally, incl. cutting
    // inside the magic, a frame header, and a payload.
    for at in [0u64, 3, 5, 9, bytes.len() as u64 / 2, bytes.len() as u64 - 1] {
        let plan = FaultPlan::new(vec![Fault::Truncate { at }]);
        let err = decode_with_faults(&bytes, &plan)
            .expect_err(&format!("truncation at byte {at} must not decode"));
        assert_eq!(err.exit_code(), 3, "byte {at}: {err}");
    }
}

#[test]
fn short_reads_are_retried_not_mistaken_for_corruption() {
    // A short read is legal under the `Read` contract: the codec must
    // transparently retry and decode the identical access sequence —
    // erroring here would turn routine kernel behaviour into data loss.
    let bytes = valid_mtr();
    let clean = read_mtr(bytes.as_slice()).expect("valid file decodes");
    for at in [1u64, 6, 13, bytes.len() as u64 / 2] {
        let plan = FaultPlan::new(vec![Fault::ShortRead { at }]);
        let replayed = decode_with_faults(&bytes, &plan)
            .unwrap_or_else(|e| panic!("short read at {at} must decode: {e}"));
        assert_eq!(replayed, clean, "short read at {at} altered the decode");
    }
    // A short read that is actually a truncation (nothing follows) is
    // detected as corruption, not silently accepted.
    let plan = FaultPlan::new(vec![Fault::ShortRead { at: 20 }, Fault::Truncate { at: 20 }]);
    assert_eq!(decode_with_faults(&bytes, &plan).unwrap_err().exit_code(), 3);
}

#[test]
fn enospc_mid_capture_fails_hard_with_context() {
    let trace: Vec<Access> = read_mtr(valid_mtr().as_slice()).expect("valid file decodes");
    let plan = FaultPlan::new(vec![Fault::Enospc { at: 64 }]);
    let err = write_mtr(FaultyWriter::new(Vec::new(), &plan), trace.clone())
        .expect_err("a full disk must fail the capture");
    assert_eq!(err.kind(), ErrorKind::StorageFull);
    assert!(err.to_string().contains("ENOSPC at byte 64"), "{err}");
    // The binaries report this as a worker failure: exit 4.
    let structured = MheError::worker_failed("trace capture", err.to_string());
    assert_eq!(structured.exit_code(), 4);
    assert!(structured.to_string().contains("ENOSPC"), "{structured}");

    // A torn write (the disk lies instead of failing) must be caught on
    // the read side by the CRC framing.
    let torn = FaultPlan::new(vec![Fault::Truncate { at: 48 }]);
    let mut w = FaultyWriter::new(Vec::new(), &torn);
    write_mtr(&mut w, trace).expect("torn writes report success");
    let err = read_mtr(w.into_inner().as_slice()).expect_err("torn file must not decode");
    assert_eq!(mhe_bench_exit(&err), 3);
}

/// The io-error → exit-status mapping the bench binaries use.
fn mhe_bench_exit(e: &std::io::Error) -> u8 {
    match e.kind() {
        ErrorKind::InvalidData | ErrorKind::UnexpectedEof => 3,
        ErrorKind::StorageFull => 4,
        _ => 1,
    }
}

#[test]
fn worker_panics_are_isolated_structured_and_retryable() {
    let _serial = fault::injection_lock().lock().unwrap();
    let items: Vec<u64> = (0..64).collect();

    // Without retries: the injected panic is caught, converted to
    // WorkerFailed naming the task, and reported with partial metrics.
    let _guard = fault::arm(FaultPlan::new(vec![Fault::PanicTask { task: 13 }]));
    let sweep = ParallelSweep::with_threads(8).with_retry(RetryPolicy::NONE).with_label("fi");
    let err = sweep.try_map(&items, |&x| Ok::<u64, MheError>(x * 2)).expect_err("task 13 dies");
    assert!(matches!(err.error, MheError::WorkerFailed { .. }), "{:?}", err.error);
    assert_eq!(err.error.exit_code(), 4);
    let msg = err.error.to_string();
    assert!(msg.contains("fi task 13") && msg.contains("injected fault"), "{msg}");
    assert!(err.metrics.completed < items.len(), "remaining work was cancelled");
    drop(_guard);

    // With one retry: the one-shot injected panic recovers transparently.
    let _guard = fault::arm(FaultPlan::new(vec![Fault::PanicTask { task: 13 }]));
    let retrying = ParallelSweep::with_threads(8)
        .with_retry(RetryPolicy { max_attempts: 2, backoff: std::time::Duration::ZERO });
    let doubled = retrying.try_map(&items, |&x| Ok::<u64, MheError>(x * 2)).expect("retried");
    assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
}

fn frontier_bits(
    p: &mhe::spacewalk::ParetoSet<mhe::spacewalk::SystemPoint>,
) -> Vec<(String, u64, u64)> {
    p.points()
        .iter()
        .map(|pt| (pt.design.processor.name.clone(), pt.cost.to_bits(), pt.time.to_bits()))
        .collect()
}

fn ckpt_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mhe_fi_{tag}_{}", std::process::id()))
}

#[test]
fn killed_walk_resumes_bit_identical_at_1_and_8_threads() {
    let space = small_space();
    for threads in [1usize, 8] {
        let eval = tiny_eval(&space, threads);

        // Uninterrupted baseline.
        let db_full = EvaluationCache::new();
        let full = walker::walk_system(&eval, &space, Penalties::default(), &db_full).unwrap();

        // "Killed" run: a partial walk checkpoints its cache atomically,
        // then the process dies — all in-memory state is lost, only the
        // checkpoint survives.
        let dir = ckpt_dir(&format!("resume{threads}"));
        std::fs::remove_dir_all(&dir).ok();
        {
            let ckpt = Checkpointer::new(&dir).unwrap();
            let db = ckpt.load().unwrap();
            let d = eval.dilation_of(&space.processors[1]);
            walker::walk_memory(&eval, &space, d, Penalties::default(), &db).unwrap();
            ckpt.save(&db).unwrap();
        }

        // Resume: reload the checkpoint, redo the deterministic walk. The
        // surviving evaluations are cache hits; the frontier and the final
        // cache contents come out bit-identical to the baseline.
        let ckpt = Checkpointer::new(&dir).unwrap();
        let db = ckpt.load().unwrap();
        assert!(!db.is_empty(), "the checkpoint preserved partial progress");
        let (hits_before, _) = db.stats();
        let resumed =
            walker::walk_system_with(&eval, &space, Penalties::default(), &db, Some(&ckpt))
                .unwrap();
        let (hits_after, _) = db.stats();
        assert!(hits_after > hits_before, "resume reused checkpointed evaluations");
        assert_eq!(
            frontier_bits(&resumed),
            frontier_bits(&full),
            "{threads} threads: resumed frontier must be bit-identical"
        );
        assert_eq!(
            db.entries(),
            db_full.entries(),
            "{threads} threads: resumed cache contents must match"
        );
        // The final checkpoint equals the in-memory cache, bit for bit.
        assert_eq!(ckpt.load().unwrap().entries(), db.entries());
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn injected_panic_aborts_the_walk_cleanly_and_a_rerun_recovers() {
    let _serial = fault::injection_lock().lock().unwrap();
    let space = small_space();
    let eval = tiny_eval(&space, 8);
    let dir = ckpt_dir("abort");
    std::fs::remove_dir_all(&dir).ok();
    let ckpt = Checkpointer::new(&dir).unwrap();

    let db_full = EvaluationCache::new();
    let full = walker::walk_system(&eval, &space, Penalties::default(), &db_full).unwrap();

    // Kill walk task 0 on its first attempt: the walk must fail with a
    // structured worker error — no panic escapes, no poisoned state.
    {
        let db = ckpt.load().unwrap();
        let _guard = fault::arm(FaultPlan::new(vec![Fault::PanicTask { task: 0 }]));
        let retry_off = std::env::var("MHE_RETRIES").ok();
        assert!(
            retry_off.is_none() || retry_off.as_deref() == Some("0"),
            "test assumes no retries"
        );
        let err = walker::walk_system_with(&eval, &space, Penalties::default(), &db, Some(&ckpt))
            .expect_err("the injected panic must abort the walk");
        assert_eq!(err.exit_code(), 4, "{err}");
        assert!(err.to_string().contains("injected fault"), "{err}");
    }

    // Disarmed rerun from whatever the checkpoint holds: completes and
    // matches the uninterrupted baseline exactly.
    let db = ckpt.load().unwrap();
    let resumed =
        walker::walk_system_with(&eval, &space, Penalties::default(), &db, Some(&ckpt)).unwrap();
    assert_eq!(frontier_bits(&resumed), frontier_bits(&full));
    assert_eq!(db.entries(), db_full.entries());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ambient_plan_parses_the_documented_env_syntax() {
    // MHE_FAULT_PLAN wiring uses the same parser; a malformed plan is
    // rejected whole rather than half-applied.
    assert!(FaultPlan::parse("flip@100:0x80,truncate@512,short@64,enospc@4096,panic@3").is_some());
    assert!(FaultPlan::parse("panic@three").is_none());
    let seeded = FaultPlan::seeded(42, 1 << 20);
    assert_eq!(seeded, FaultPlan::seeded(42, 1 << 20), "seeded plans reproduce");
}

#[test]
fn faulty_writer_composes_with_the_streaming_trace_writer() {
    // The capture path the binaries use (TraceWriter over a sink) hits
    // injected ENOSPC exactly at the scheduled offset, with the partial
    // prefix flushed — mirroring a real full disk.
    let trace: Vec<Access> = read_mtr(valid_mtr().as_slice()).expect("valid file decodes");
    let plan = FaultPlan::new(vec![Fault::Enospc { at: 32 }]);
    let mut sink = FaultyWriter::new(Vec::new(), &plan);
    let err = (|| -> std::io::Result<()> {
        let mut w = TraceWriter::new(&mut sink)?;
        w.write_all(trace)?;
        w.finish()?;
        Ok(())
    })()
    .expect_err("capture onto a full disk must fail");
    assert_eq!(err.kind(), ErrorKind::StorageFull);
    assert!(sink.into_inner().len() <= 32, "nothing lands past the full mark");
}
