//! Shared setup for the integration-test suites.
//!
//! The policy-differential, sampling-accuracy, and daemon suites all
//! start from the same ingredients — a reference instruction trace, a
//! configured evaluation, a small walkable spec — and diverged copies of
//! that setup are exactly how differential harnesses drift apart. Each
//! helper lives here once; each suite binds its own constants (events,
//! grids, budgets) and passes them in.

// Each integration test is its own crate, so no single suite uses every
// helper here.
#![allow(dead_code)]

use mhe::prelude::*;
use mhe::trace::{StreamKind, TraceGenerator};
use mhe::vliw::compile::Compiled;

/// The workspace-wide deterministic seed (`EvalConfig::default().seed`).
pub const SEED: u64 = 0xC0FF_EE01;

/// The reference instruction-address trace of `b` on the P1111 reference
/// processor: `events` scheduler events, default seed.
pub fn instruction_trace(b: Benchmark, events: usize) -> Vec<u64> {
    let program = b.generate();
    let compiled = Compiled::build(&program, &ProcessorKind::P1111.mdes(), None);
    TraceGenerator::new(&program, &compiled, SEED)
        .stream(StreamKind::Instruction)
        .take(events)
        .map(|a| a.addr)
        .collect()
}

/// Builds one reference evaluation of `b` under `policy`, sampled or
/// exact, over the caller's (icache, dcache, ucache) grids.
pub fn build_eval(
    b: Benchmark,
    policy: Policy,
    threads: usize,
    events: usize,
    sampling: Option<SamplingConfig>,
    grids: (Vec<CacheConfig>, Vec<CacheConfig>, Vec<CacheConfig>),
) -> ReferenceEvaluation {
    let (ic, dc, uc) = grids;
    let mut builder = EvalConfig::builder().events(events).threads(threads).policy(policy);
    if let Some(s) = sampling {
        builder = builder.sampling(s);
    }
    let cfg = builder.build().expect("harness config is valid");
    ReferenceEvaluation::for_benchmark(b, &ProcessorKind::P1111.mdes(), cfg, &ic, &dc, &uc)
}

/// A small but non-trivial walkable spec: two processors, two sizes and
/// two associativities of I$, split/unified caches — enough structure
/// for a multi-row frontier while staying debug-build fast.
pub fn demo_spec_text(benchmark: &str, events: usize) -> String {
    format!(
        "[processors]\n\
         kinds = 1111 3221\n\
         \n\
         [icache]\n\
         sizes_kb = 1 4\n\
         assocs = 1 2\n\
         line_bytes = 32\n\
         ports = 1\n\
         \n\
         [dcache]\n\
         sizes_kb = 1 4\n\
         assocs = 1\n\
         line_bytes = 32\n\
         ports = 1\n\
         \n\
         [ucache]\n\
         sizes_kb = 16 64\n\
         assocs = 2\n\
         line_bytes = 64\n\
         ports = 1\n\
         \n\
         [eval]\n\
         benchmark = {benchmark}\n\
         events = {events}\n\
         l1_miss = 10\n\
         l2_miss = 50\n"
    )
}
