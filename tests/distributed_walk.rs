//! Differential harness for the distributed spacewalk.
//!
//! The contract under test: a frontier produced by a fleet — any worker
//! count, any attach order, even a worker killed mid-sweep — is the
//! *same bytes* a single-process batch walk prints for the same spec.
//! Identity is checked on the rendered listing and on the raw `f64` bit
//! patterns of every frontier row, in full-trace and interval-sampled
//! modes.
//!
//! Also covered: work stealing (the killed worker's streamed points
//! arrive back as prefill, so the healthy worker never recomputes them)
//! and the dead-coordinator contract (a worker whose coordinator goes
//! silent exits with the server-unavailable code 5).

use mhe::core::evaluator::{EvalConfig, ReferenceEvaluation};
use mhe::prelude::*;
use mhe::spacewalk::service::proto;
use mhe::spacewalk::spec::Spec;
use mhe::spacewalk::{
    render_frontier, report_from, walker, ClientError, FleetSummary, WorkerOutcome,
};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

mod common;

/// Short but non-degenerate, matching the daemon suite.
const EVENTS: usize = 20_000;

/// One fully-built batch context: evaluation, parsed spec, and the
/// reference answer (rendered listing plus frontier `f64` bits).
struct Batch {
    text: String,
    spec: Spec,
    eval: Arc<ReferenceEvaluation>,
    want_render: String,
    want_bits: Vec<(String, u64, u64)>,
}

fn batch(benchmark: &str, sampling: Option<SamplingConfig>) -> Batch {
    let text = common::demo_spec_text(benchmark, EVENTS);
    let spec = Spec::parse(&text).expect("demo spec parses");
    let eval = Arc::new(walker::prepare_evaluation(
        spec.benchmark.generate(),
        &ProcessorKind::P1111.mdes(),
        EvalConfig { events: spec.events, sampling, ..EvalConfig::default() },
        &spec.space,
    ));
    let db = EvaluationCache::new();
    let frontier =
        walker::walk_system(&eval, &spec.space, spec.penalties, &db).expect("batch walk");
    let report = report_from(&eval, &frontier, &db);
    let want_bits = report
        .rows
        .iter()
        .map(|r| (r.processor.clone(), r.cost.to_bits(), r.time.to_bits()))
        .collect();
    Batch { text, spec, eval, want_render: render_frontier(&report), want_bits }
}

impl Batch {
    fn job(&self, sampling: Option<SamplingConfig>) -> FleetJob {
        FleetJob { spec_text: self.text.clone(), sampling, policies: None }
    }

    fn worker_options(&self) -> WorkerOptions {
        WorkerOptions {
            threads: Some(1),
            prepared: Some(PreparedWorker {
                eval: Arc::clone(&self.eval),
                space: self.spec.space.clone(),
            }),
            ..WorkerOptions::default()
        }
    }

    /// Finishes a fleet sweep: the serial walk over the merged cache,
    /// rendered exactly as `spacewalker fleet` renders it.
    fn finish(&self, db: &EvaluationCache) -> (String, Vec<(String, u64, u64)>) {
        let frontier =
            walker::walk_system_with(&self.eval, &self.spec.space, self.spec.penalties, db, None)
                .expect("post-fleet walk");
        let report = report_from(&self.eval, &frontier, db);
        let bits = report
            .rows
            .iter()
            .map(|r| (r.processor.clone(), r.cost.to_bits(), r.time.to_bits()))
            .collect();
        (render_frontier(&report), bits)
    }
}

/// Runs one fleet sweep with `workers` concurrent healthy in-process
/// workers; returns the summary and the merged cache.
fn run_fleet(
    batch: &Batch,
    sampling: Option<SamplingConfig>,
    workers: usize,
    shard_count: u32,
) -> (FleetSummary, Arc<EvaluationCache>) {
    let db = Arc::new(EvaluationCache::new());
    let cfg = FleetConfig { shard_count, ..FleetConfig::default() };
    let coordinator = Coordinator::bind("127.0.0.1:0", batch.job(sampling), cfg, Arc::clone(&db))
        .expect("bind coordinator");
    let addr = coordinator.local_addr().expect("local addr").to_string();

    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let addr = addr.clone();
            let opts = batch.worker_options();
            std::thread::spawn(move || run_worker(&addr, opts))
        })
        .collect();
    let summary = coordinator.run(None).expect("fleet sweep");
    for (i, h) in handles.into_iter().enumerate() {
        h.join().expect("worker thread").unwrap_or_else(|e| panic!("worker {i}: {e}"));
    }
    (summary, db)
}

/// The acceptance gate: at 1, 2, and 4 workers, on two benchmarks, the
/// fleet frontier is byte-identical (rendered listing and `f64` bits) to
/// the single-process batch walk.
#[test]
fn fleet_frontier_is_bit_identical_at_any_worker_count() {
    for benchmark in ["unepic", "epic"] {
        let batch = batch(benchmark, None);
        for workers in [1usize, 2, 4] {
            let (summary, db) = run_fleet(&batch, None, workers, 32);
            assert_eq!(summary.steals, 0, "{benchmark}/{workers}: healthy sweep stole");
            assert_eq!(summary.duplicates, 0, "{benchmark}/{workers}: duplicate deliveries");
            assert!(summary.points > 0, "{benchmark}/{workers}: fleet merged nothing");
            let (render, bits) = batch.finish(&db);
            assert_eq!(
                render, batch.want_render,
                "{benchmark}/{workers} workers: rendered frontier differs from batch"
            );
            assert_eq!(
                bits, batch.want_bits,
                "{benchmark}/{workers} workers: frontier bits differ from batch"
            );
        }
    }
}

/// The same identity holds when the reference evaluation runs in
/// interval-sampled mode — provenance and all.
#[test]
fn sampled_fleet_frontier_matches_sampled_batch() {
    let sampling = Some(SamplingConfig { interval_accesses: 2_000, ..SamplingConfig::default() });
    let batch = batch("unepic", sampling);
    for workers in [1usize, 2, 4] {
        let (summary, db) = run_fleet(&batch, sampling, workers, 16);
        assert!(summary.points > 0);
        let (render, bits) = batch.finish(&db);
        assert_eq!(render, batch.want_render, "{workers} workers: sampled render differs");
        assert_eq!(bits, batch.want_bits, "{workers} workers: sampled bits differ");
    }
}

/// Kill a worker mid-sweep: its leased shards are stolen, its streamed
/// points come back as prefill (never recomputed), and the final
/// frontier is still byte-identical to batch.
#[test]
fn killed_worker_is_stolen_from_and_identity_survives() {
    let batch = batch("unepic", None);
    let db = Arc::new(EvaluationCache::new());
    let cfg = FleetConfig { shard_count: 8, ..FleetConfig::default() };
    let coordinator = Coordinator::bind("127.0.0.1:0", batch.job(None), cfg, Arc::clone(&db))
        .expect("bind coordinator");
    let addr = coordinator.local_addr().expect("local addr").to_string();

    // Sequential for determinism: the doomed worker runs alone, dies
    // mid-shard with points streamed, and only then does the healthy
    // worker attach — so the steal and the prefill are guaranteed, not
    // scheduling-dependent.
    let run = std::thread::spawn(move || coordinator.run(None));

    const DOOMED_POINTS: u64 = 5;
    let doomed_err = run_worker(
        &addr,
        WorkerOptions { die_after_points: Some(DOOMED_POINTS), ..batch.worker_options() },
    )
    .expect_err("doomed worker must die");
    match &doomed_err {
        ClientError::Remote { code, message } => {
            assert_eq!(*code, mhe::core::EXIT_WORKER_FAILURE, "{doomed_err}");
            assert!(message.contains("injected worker death"), "{message}");
        }
        other => panic!("expected injected death, got {other:?}"),
    }

    let healthy_outcome: WorkerOutcome =
        run_worker(&addr, batch.worker_options()).expect("healthy worker finishes");
    let summary = run.join().expect("coordinator thread").expect("fleet survives the kill");

    assert!(summary.steals >= 1, "the dead worker's lease must be stolen: {summary:?}");
    assert_eq!(summary.duplicates, 0, "prefill must prevent duplicate deliveries: {summary:?}");
    // Shards the doomed worker *completed* are never re-offered; only
    // the mid-flight shard comes back, carrying its already-streamed
    // points as prefill. At least the dying flush must round-trip.
    assert!(
        (1..=DOOMED_POINTS).contains(&healthy_outcome.skipped_prefilled),
        "the doomed worker's streamed points must come back as prefill: {healthy_outcome:?}"
    );

    let (render, bits) = batch.finish(&db);
    assert_eq!(render, batch.want_render, "post-kill frontier differs from batch");
    assert_eq!(bits, batch.want_bits, "post-kill frontier bits differ from batch");
}

/// A worker whose coordinator goes silent exits with the
/// server-unavailable contract (exit code 5) once the reply deadline
/// passes — it does not hang.
#[test]
fn worker_times_out_on_a_dead_coordinator_with_exit_code_5() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind fake coordinator");
    let addr = listener.local_addr().expect("local addr").to_string();
    let fake = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept worker");
        // Announce like a real coordinator, then go silent forever.
        stream.write_all(&proto::handshake(proto::FEATURE_FLEET)).expect("announce");
        std::thread::sleep(Duration::from_secs(5));
        drop(stream);
    });

    let batch = batch("unepic", None);
    let opts =
        WorkerOptions { reply_timeout: Some(Duration::from_millis(500)), ..batch.worker_options() };
    let err = run_worker(&addr, opts).expect_err("silence must not hang the worker");
    match &err {
        ClientError::Unavailable(message) => {
            assert_eq!(err.exit_code(), mhe::core::EXIT_SERVER_UNAVAILABLE);
            assert!(message.contains("silent"), "{message}");
        }
        other => panic!("expected Unavailable, got {other:?}"),
    }
    fake.join().expect("fake coordinator thread");
}
