//! Observability must never change results: with `MHE_OBS`-style sinks
//! enabled (text and json), measured miss maps, estimates, and walker
//! frontiers are bit-identical to the probe-free run, at 1 and at 8
//! worker threads.
//!
//! The obs level is process-global, so everything lives in ONE `#[test]`
//! (this file is its own test binary; in-process tests would race on the
//! level).

use mhe::prelude::*;
use mhe::spacewalk::walker;
use std::sync::Arc;

fn space() -> SystemSpace {
    SystemSpace {
        processors: vec![ProcessorKind::P1111.mdes(), ProcessorKind::P3221.mdes()],
        icache: CacheSpace {
            sizes_bytes: vec![1 << 10, 2 << 10, 4 << 10],
            assocs: vec![1, 2],
            line_bytes: vec![16, 32],
            ports: vec![1],
            policies: vec![Policy::Lru],
        },
        dcache: CacheSpace {
            sizes_bytes: vec![1 << 10, 4 << 10],
            assocs: vec![1],
            line_bytes: vec![32],
            ports: vec![1],
            policies: vec![Policy::Lru],
        },
        ucache: CacheSpace {
            sizes_bytes: vec![16 << 10, 64 << 10],
            assocs: vec![2],
            line_bytes: vec![64],
            ports: vec![1],
            policies: vec![Policy::Lru],
        },
    }
}

/// Everything a run answers with, reduced to exactly comparable bits.
#[derive(PartialEq, Debug)]
struct RunBits {
    imeasured: Vec<(CacheConfig, u64)>,
    dmeasured: Vec<(CacheConfig, u64)>,
    umeasured: Vec<(CacheConfig, u64)>,
    estimate: u64,
    frontier: Vec<(String, u64, u64)>,
    heuristic: Vec<(u64, u64)>,
    heuristic_evaluated: usize,
}

fn run(threads: usize) -> RunBits {
    let space = space();
    let eval = walker::prepare_evaluation(
        Benchmark::Unepic.generate(),
        &ProcessorKind::P1111.mdes(),
        EvalConfig::builder().events(20_000).threads(threads).build().expect("valid config"),
        &space,
    );
    let estimate = eval
        .estimate_icache_misses(CacheConfig::from_bytes(1024, 1, 32), 1.5)
        .expect("config is in the simulated space")
        .to_bits();
    let db = EvaluationCache::new();
    let frontier = walker::walk_system(&eval, &space, Penalties::default(), &db)
        .expect("space is fully simulated")
        .points()
        .iter()
        .map(|p| (p.design.processor.name.clone(), p.cost.to_bits(), p.time.to_bits()))
        .collect();
    let app: Arc<str> = Arc::from(eval.program().name.as_str());
    let hdb = EvaluationCache::new();
    let heuristic = walk_heuristic(
        &space.icache,
        &hdb,
        threads,
        |d| MetricKey::icache(&app, d, 1.5),
        |d| eval.estimate_icache_misses(d.config, 1.5),
    )
    .expect("heuristic walk succeeds");
    let sorted = |m: &std::collections::HashMap<CacheConfig, u64>| {
        let mut v: Vec<(CacheConfig, u64)> = m.iter().map(|(c, n)| (*c, *n)).collect();
        v.sort_unstable();
        v
    };
    RunBits {
        imeasured: sorted(eval.imeasured()),
        dmeasured: sorted(eval.dmeasured()),
        umeasured: sorted(eval.umeasured()),
        estimate,
        frontier,
        heuristic: heuristic
            .pareto
            .points()
            .iter()
            .map(|p| (p.cost.to_bits(), p.time.to_bits()))
            .collect(),
        heuristic_evaluated: heuristic.evaluated,
    }
}

#[test]
fn enabled_observability_leaves_results_bit_identical() {
    mhe::obs::set_level(ObsLevel::Off);
    let baseline = run(1);

    for level in [ObsLevel::Text, ObsLevel::Json] {
        for threads in [1usize, 8] {
            mhe::obs::set_level(level);
            let bits = run(threads);
            mhe::obs::set_level(ObsLevel::Off);
            assert_eq!(
                baseline, bits,
                "results diverge with obs level {level:?} at {threads} threads"
            );
        }
    }
    mhe::obs::reset();
}
