//! Golden regression tests: pinned miss counts for the model's two core
//! mechanisms.
//!
//! * **Lemma 1** (dilation ⇔ line contraction): at an integer power-of-two
//!   contraction the estimate must *equal* the measured misses of the
//!   contracted-line cache — no interpolation, no tolerance — and the
//!   dilated-trace simulation must reproduce the same count, because block
//!   dilation by 2 touches exactly the lines that half-size lines touch.
//! * **Eq. 4.12** (AHH-collision interpolation): at a fractional
//!   contraction the estimate interpolates between the neighbouring
//!   measured line sizes, linearly in the modeled collision count, and
//!   lands strictly between them.
//!
//! The pinned integers below are the simulator's output for the fixed
//! seed/window (epic, P1111 reference, 50 000 events, seed 0xC0FF_EE01);
//! they guard against silent changes anywhere in the workload → compile →
//! trace → simulate pipeline. If a deliberate change to that pipeline
//! moves them, re-pin and say so in the commit message.

use mhe::core::evaluator::dilated_misses;
use mhe::prelude::*;

const EVENTS: usize = 50_000;

/// Reference misses of the 1 KB direct-mapped icache at 8/4/2-word lines.
const MEASURED_L8: u64 = 4375;
const MEASURED_L4: u64 = 12_895;
const MEASURED_L2: u64 = 36_471;
/// Eq. 4.12 estimate at d = 1.5 (effective line 16/3 words, bracket 4–8).
const EST_D15: f64 = 8712.673345;
/// Eq. 4.15 unified estimate at d = 2 for the 16 KB 2-way cache.
const EST_U_D2: f64 = 17_406.949204;

fn config() -> EvalConfig {
    EvalConfig { events: EVENTS, seed: 0xC0FF_EE01, threads: 2, ..EvalConfig::default() }
}

/// 1 KB direct-mapped, 32-byte (8-word) lines.
fn l1() -> CacheConfig {
    CacheConfig::from_bytes(1024, 1, 32)
}

fn u1() -> CacheConfig {
    CacheConfig::from_bytes(16 * 1024, 2, 64)
}

fn eval() -> ReferenceEvaluation {
    ReferenceEvaluation::for_benchmark(
        Benchmark::Epic,
        &ProcessorKind::P1111.mdes(),
        config(),
        &[l1()],
        &[],
        &[u1()],
    )
}

#[test]
fn measured_reference_misses_are_pinned() {
    let e = eval();
    let cfg = l1();
    let at = |l: u32| {
        e.icache_misses_measured(CacheConfig::new(cfg.sets, cfg.assoc, l))
            .expect("line size pre-simulated")
    };
    assert_eq!(at(8), MEASURED_L8);
    assert_eq!(at(4), MEASURED_L4);
    assert_eq!(at(2), MEASURED_L2);
}

#[test]
fn lemma1_power_of_two_dilation_is_exact() {
    let e = eval();
    // d = 2 contracts the 8-word line to exactly 4 words: the estimate is
    // the measured half-line count, bit-for-bit, no model involved.
    let est = e.estimate_icache_misses(l1(), 2.0).unwrap();
    assert_eq!(est, MEASURED_L4 as f64);
    // d = 4 likewise hits the 2-word measurement.
    let est4 = e.estimate_icache_misses(l1(), 4.0).unwrap();
    assert_eq!(est4, MEASURED_L2 as f64);
}

#[test]
fn lemma1_matches_dilated_trace_simulation() {
    let e = eval();
    // Ground truth for the lemma itself: simulating the reference trace
    // with every block dilated by 2 yields the same count as halving the
    // line size on the undilated trace.
    let sim =
        dilated_misses(e.program(), e.reference(), 2.0, &config(), StreamKind::Instruction, l1());
    assert_eq!(sim, MEASURED_L4);
}

#[test]
fn eq412_interpolation_is_pinned_and_bracketed() {
    let e = eval();
    // d = 1.5: effective line 16/3 ∈ (4, 8), so the estimate interpolates
    // between the two measured counts in the collision basis.
    let est = e.estimate_icache_misses(l1(), 1.5).unwrap();
    assert!((est - EST_D15).abs() < 1e-3, "est = {est}, pinned {EST_D15}");
    assert!(
        (MEASURED_L8 as f64) < est && est < (MEASURED_L4 as f64),
        "interpolant must lie strictly between the bracket measurements"
    );
}

#[test]
fn unified_extrapolation_is_pinned() {
    let e = eval();
    let est = e.estimate_ucache_misses(u1(), 2.0).unwrap();
    assert!((est - EST_U_D2).abs() < 1e-3, "est = {est}, pinned {EST_U_D2}");
    // d = 1 must return the measured count unchanged.
    let base = e.estimate_ucache_misses(u1(), 1.0).unwrap();
    assert_eq!(base, e.ucache_misses_measured(u1()).unwrap() as f64);
}
