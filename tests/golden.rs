//! Golden regression tests: pinned miss counts for the model's two core
//! mechanisms.
//!
//! * **Lemma 1** (dilation ⇔ line contraction): at an integer power-of-two
//!   contraction the estimate must *equal* the measured misses of the
//!   contracted-line cache — no interpolation, no tolerance — and the
//!   dilated-trace simulation must reproduce the same count, because block
//!   dilation by 2 touches exactly the lines that half-size lines touch.
//! * **Eq. 4.12** (AHH-collision interpolation): at a fractional
//!   contraction the estimate interpolates between the neighbouring
//!   measured line sizes, linearly in the modeled collision count, and
//!   lands strictly between them.
//!
//! The pinned integers below are the simulator's output for the fixed
//! seed/window (epic, P1111 reference, 50 000 events, seed 0xC0FF_EE01);
//! they guard against silent changes anywhere in the workload → compile →
//! trace → simulate pipeline. If a deliberate change to that pipeline
//! moves them, re-pin and say so in the commit message.

use mhe::core::evaluator::dilated_misses;
use mhe::prelude::*;

const EVENTS: usize = 50_000;

/// Reference misses of the 1 KB direct-mapped icache at 8/4/2-word lines.
const MEASURED_L8: u64 = 4375;
const MEASURED_L4: u64 = 12_895;
const MEASURED_L2: u64 = 36_471;
/// Eq. 4.12 estimate at d = 1.5 (effective line 16/3 words, bracket 4–8).
const EST_D15: f64 = 8712.673345;
/// Eq. 4.15 unified estimate at d = 2 for the 16 KB 2-way cache.
const EST_U_D2: f64 = 17_406.949204;

fn config() -> EvalConfig {
    EvalConfig { events: EVENTS, seed: 0xC0FF_EE01, threads: 2, ..EvalConfig::default() }
}

/// 1 KB direct-mapped, 32-byte (8-word) lines.
fn l1() -> CacheConfig {
    CacheConfig::from_bytes(1024, 1, 32)
}

fn u1() -> CacheConfig {
    CacheConfig::from_bytes(16 * 1024, 2, 64)
}

fn eval() -> ReferenceEvaluation {
    ReferenceEvaluation::for_benchmark(
        Benchmark::Epic,
        &ProcessorKind::P1111.mdes(),
        config(),
        &[l1()],
        &[],
        &[u1()],
    )
}

#[test]
fn measured_reference_misses_are_pinned() {
    let e = eval();
    let cfg = l1();
    let at = |l: u32| {
        e.icache_misses_measured(CacheConfig::new(cfg.sets, cfg.assoc, l))
            .expect("line size pre-simulated")
    };
    assert_eq!(at(8), MEASURED_L8);
    assert_eq!(at(4), MEASURED_L4);
    assert_eq!(at(2), MEASURED_L2);
}

#[test]
fn lemma1_power_of_two_dilation_is_exact() {
    let e = eval();
    // d = 2 contracts the 8-word line to exactly 4 words: the estimate is
    // the measured half-line count, bit-for-bit, no model involved.
    let est = e.estimate_icache_misses(l1(), 2.0).unwrap();
    assert_eq!(est, MEASURED_L4 as f64);
    // d = 4 likewise hits the 2-word measurement.
    let est4 = e.estimate_icache_misses(l1(), 4.0).unwrap();
    assert_eq!(est4, MEASURED_L2 as f64);
}

#[test]
fn lemma1_matches_dilated_trace_simulation() {
    let e = eval();
    // Ground truth for the lemma itself: simulating the reference trace
    // with every block dilated by 2 yields the same count as halving the
    // line size on the undilated trace.
    let sim =
        dilated_misses(e.program(), e.reference(), 2.0, &config(), StreamKind::Instruction, l1());
    assert_eq!(sim, MEASURED_L4);
}

#[test]
fn eq412_interpolation_is_pinned_and_bracketed() {
    let e = eval();
    // d = 1.5: effective line 16/3 ∈ (4, 8), so the estimate interpolates
    // between the two measured counts in the collision basis.
    let est = e.estimate_icache_misses(l1(), 1.5).unwrap();
    assert!((est - EST_D15).abs() < 1e-3, "est = {est}, pinned {EST_D15}");
    assert!(
        (MEASURED_L8 as f64) < est && est < (MEASURED_L4 as f64),
        "interpolant must lie strictly between the bracket measurements"
    );
}

/// Per-policy pinned miss counts: the same 50 000-event instruction
/// trace, simulated under each replacement policy on a 16-set 4-way cache
/// (8-word lines). The counts must differ across policies (the policies
/// are real) and must reproduce exactly (the engines are deterministic,
/// including seeded random).
const POLICY_PINS: [(Benchmark, [(Policy, u64); 4]); 2] = [
    (
        Benchmark::Epic,
        [
            (Policy::Lru, 671),
            (Policy::Fifo, 668),
            (Policy::PlruTree, 670),
            (Policy::Random(0x5EED_CAFE), 709),
        ],
    ),
    (
        Benchmark::Unepic,
        [
            (Policy::Lru, 406),
            (Policy::Fifo, 414),
            (Policy::PlruTree, 420),
            (Policy::Random(0x5EED_CAFE), 490),
        ],
    ),
];

#[test]
fn per_policy_misses_are_pinned() {
    use mhe::vliw::compile::Compiled;
    for (benchmark, pins) in POLICY_PINS {
        let program = benchmark.generate();
        let compiled = Compiled::build(&program, &ProcessorKind::P1111.mdes(), None);
        let trace: Vec<u64> = TraceGenerator::new(&program, &compiled, 0xC0FF_EE01)
            .stream(StreamKind::Instruction)
            .take(EVENTS)
            .map(|a| a.addr)
            .collect();
        for (policy, pinned) in pins {
            let cfg = CacheConfig::new(16, 4, 8).with_policy(policy);
            let got = Cache::new(cfg).run(trace.iter().copied()).misses;
            assert_eq!(got, pinned, "{benchmark:?} under {policy}");
        }
    }
}

/// The evaluation-cache v3 byte layout is a compatibility contract; this
/// pins it the way `crates/trace/tests/codec.rs` pins the `.mtr` format.
/// Layout per entry: metric tag, app string (varint length + UTF-8),
/// design (sets/assoc/line_words/ports varints, then the v3 policy tag
/// varint with a seed varint for `random`), key-specific fields, and the
/// value's `f64` bits in 8 LE bytes; a CRC-32/IEEE footer closes the file.
#[test]
fn cache_db_v3_byte_layout_is_pinned() {
    use std::sync::Arc;
    let app: Arc<str> = Arc::from("x");
    let base = CacheConfig::new(8, 2, 8);
    let db = EvaluationCache::new();
    db.insert(
        MetricKey::icache(&app, CacheDesign::single_ported(base.with_policy(Policy::Fifo)), 2.0),
        42.0,
    );
    db.insert(
        MetricKey::dcache(&app, CacheDesign::single_ported(base.with_policy(Policy::Random(7)))),
        1.5,
    );
    let path = std::env::temp_dir().join(format!("mhe_golden_v3_{}.mhec", std::process::id()));
    db.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let expected: &[u8] = &[
        0x4D, 0x48, 0x45, 0x43, // magic "MHEC"
        0x03, // version 3
        0x02, // entry count
        // icache key sorts first (variant order)
        0x00, // tag: icache misses
        0x01, 0x78, // app "x"
        0x08, 0x02, 0x08, // sets=8 assoc=2 line_words=8
        0x01, // ports=1
        0x01, // policy tag: fifo
        0xD0, 0x0F, // dilation 2000 millis
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x45, 0x40, // 42.0f64 LE bits
        0x01, // tag: dcache misses
        0x01, 0x78, // app "x"
        0x08, 0x02, 0x08, // sets=8 assoc=2 line_words=8
        0x01, // ports=1
        0x03, 0x07, // policy tag: random, seed 7
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF8, 0x3F, // 1.5f64 LE bits
        0xED, 0xA8, 0xF6, 0x15, // CRC-32/IEEE footer
    ];
    assert_eq!(bytes, expected, "cache-db v3 byte layout moved");
}

/// Sampled-path golden pin: the interval-sampled evaluation of the same
/// fixed seed/window, at the `--sample` default configuration, is fully
/// deterministic — so its grid is pinned to exact integers just like the
/// full-simulation counts above. Guards the whole sampling pipeline
/// (splitting, signatures, seeded k-means, stale-state replay, blended
/// estimator) against silent drift. If a deliberate estimator change
/// moves these, re-pin and say so in the commit message.
const SAMPLED_L8: u64 = 4343;
const SAMPLED_U: u64 = 17_225;

#[test]
fn sampled_grid_is_pinned() {
    let cfg = EvalConfig { sampling: Some(SamplingConfig::default()), ..config() };
    let e = ReferenceEvaluation::for_benchmark(
        Benchmark::Epic,
        &ProcessorKind::P1111.mdes(),
        cfg,
        &[l1()],
        &[],
        &[u1()],
    );
    assert_eq!(e.icache_misses_measured(l1()), Some(SAMPLED_L8));
    assert_eq!(e.ucache_misses_measured(u1()), Some(SAMPLED_U));
    // The pin must stay an approximation of, not a replacement for, the
    // exact path: within the harness's global 2 % budget of the full
    // simulation on both grids.
    let exact = eval();
    for (got, want) in [
        (SAMPLED_L8, exact.icache_misses_measured(l1()).unwrap()),
        (SAMPLED_U, exact.ucache_misses_measured(u1()).unwrap()),
    ] {
        let rel = (got as f64 - want as f64).abs() / want.max(1) as f64;
        assert!(rel <= 0.02, "sampled pin {got} vs exact {want} ({rel:.4})");
    }
}

#[test]
fn unified_extrapolation_is_pinned() {
    let e = eval();
    let est = e.estimate_ucache_misses(u1(), 2.0).unwrap();
    assert!((est - EST_U_D2).abs() < 1e-3, "est = {est}, pinned {EST_U_D2}");
    // d = 1 must return the measured count unchanged.
    let base = e.estimate_ucache_misses(u1(), 1.0).unwrap();
    assert_eq!(base, e.ucache_misses_measured(u1()).unwrap() as f64);
}
